package gateway_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/gateway"
)

// BenchmarkGatewayScaling measures end-to-end job throughput through the
// federation gateway as the replica pool grows from 1 to 2 to 4.
//
// Each replica runs Workers=1 and the service holds its single worker for a
// fixed 20ms of wall clock, modelling an external solver whose cost is
// wall-clock-bound (license seat, subprocess, remote license server) — the
// common shape for MathCloud-style wrapped applications.  In production each
// replica owns its own cores; in this in-process benchmark every replica,
// the gateway, and all clients share the host CPU, so routing and proxy
// overhead is charged against the same budget as the replicas themselves.
// Near-linear jobs/s scaling therefore demonstrates that the gateway tier's
// per-request cost is small relative to even a 20ms service time.
//
// The service is non-deterministic so neither the computation cache nor the
// gateway memo-hint table can short-circuit execution: every submission
// occupies a replica worker for the full service time.
func BenchmarkGatewayScaling(b *testing.B) {
	const serviceTime = 20 * time.Millisecond
	adapter.RegisterFunc("gwbench.solve", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-time.After(serviceTime):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		a, _ := in["a"].(float64)
		return core.Values{"sum": a}, nil
	})

	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			var reps []*replica
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("r%02d", i+1)
				c, err := container.New(container.Options{
					Workers:   1,
					ReplicaID: name,
					Logger:    quietLogger(),
				})
				if err != nil {
					b.Fatalf("New container %s: %v", name, err)
				}
				b.Cleanup(c.Close)
				if err := c.Deploy(numService(b, "solve", "gwbench.solve", false)); err != nil {
					b.Fatalf("Deploy on %s: %v", name, err)
				}
				srv := httptest.NewServer(c.Handler())
				b.Cleanup(srv.Close)
				reps = append(reps, &replica{name: name, c: c, srv: srv})
			}
			_, gw := startGateway(b, gateway.Options{}, reps...)

			const jobs = 96
			clients := 4 * n // enough submitters to keep every worker busy
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				var next atomic.Int64
				var failed atomic.Int64
				start := time.Now()
				var wg sync.WaitGroup
				for w := 0; w < clients; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > jobs {
								return
							}
							body := fmt.Sprintf(`{"a": %d}`, i)
							resp, err := http.Post(gw.URL+"/services/solve?wait=60s",
								"application/json", strings.NewReader(body))
							if err != nil {
								failed.Add(1)
								return
							}
							var job core.Job
							err = json.NewDecoder(resp.Body).Decode(&job)
							resp.Body.Close()
							if err != nil || resp.StatusCode != http.StatusCreated || job.State != core.StateDone {
								failed.Add(1)
							}
						}
					}()
				}
				wg.Wait()
				elapsed := time.Since(start)
				if f := failed.Load(); f != 0 {
					b.Fatalf("%d of %d jobs failed", f, jobs)
				}
				b.ReportMetric(float64(jobs)/elapsed.Seconds(), "jobs/s")
			}
		})
	}
}
