package gateway_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/gateway"
)

// TestDeadReplicaFailsFastAndFailsOver covers the first failure mode of the
// federation: a replica dies while clients still hold IDs homed on it.
// Affinity requests must fail fast with 502 Bad Gateway (the retryable
// routing-tier signal), not hang, and new work must stop landing on the
// dead replica immediately (passive health).
func TestDeadReplicaFailsFastAndFailsOver(t *testing.T) {
	adapter.RegisterFunc("gwtest.add", addFunc())
	r1 := startReplica(t, "r01", numService(t, "add", "gwtest.add", false))
	r2 := startReplica(t, "r02", numService(t, "add", "gwtest.add", false))
	_, gw := startGateway(t, gateway.Options{}, r1, r2)

	r2.srv.Close()

	deadID := "r02-" + strings.Repeat("0", 32)
	for _, path := range []string{
		"/services/add/jobs/" + deadID,
		"/services/add/sweeps/" + deadID,
	} {
		start := time.Now()
		resp, err := http.Get(gw.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("GET %s took %v, want a fast failure", path, elapsed)
		}
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("GET %s: status %d, want 502", path, resp.StatusCode)
		}
	}

	// The failed proxy marked r02 down: everything now lands on r01.
	for i := 0; i < 3; i++ {
		resp, job := postJSON(t, gw.URL+"/services/add?wait=15s", core.Values{"a": float64(i)})
		if resp.StatusCode != http.StatusCreated || job["state"] != "DONE" {
			t.Fatalf("failover submit %d: status %d state %v", i, resp.StatusCode, job["state"])
		}
		if rep := resp.Header.Get(container.ReplicaHeader); rep != "r01" {
			t.Fatalf("failover submit %d landed on %q", i, rep)
		}
	}
}

// TestScatterGatherPartialResultWithWarning covers the second failure mode:
// one replica hangs past the per-replica deadline during a scatter-gather.
// The merged response must come back inside the deadline with the live
// replicas' data and a Warning header naming the missing one.
func TestScatterGatherPartialResultWithWarning(t *testing.T) {
	adapter.RegisterFunc("gwtest.add", addFunc())
	r1 := startReplica(t, "r01", numService(t, "add", "gwtest.add", false))
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(30 * time.Second):
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(hang.CloseClientConnections)
	t.Cleanup(hang.Close)

	opts := gateway.Options{
		FanoutTimeout: 300 * time.Millisecond,
		Replicas:      []gateway.Replica{{Name: "r02", BaseURL: hang.URL}},
	}
	_, gw := startGateway(t, opts, r1)

	start := time.Now()
	resp, index := getJSON(t, gw.URL+"/")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("merged index took %v, want bounded by the per-replica deadline", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /: status %d, want 200 partial result", resp.StatusCode)
	}
	warning := resp.Header.Get("Warning")
	if !strings.Contains(warning, "r02") {
		t.Fatalf("Warning header %q does not name the unreachable replica", warning)
	}
	services := index["services"].([]any)
	if len(services) != 1 || services[0].(map[string]any)["name"] != "add" {
		t.Fatalf("partial merge lost the live replica's services: %v", services)
	}
	if v := metricValue(t, gw.URL, "mc_gateway_fanout_partial_total"); v < 1 {
		t.Fatalf("mc_gateway_fanout_partial_total = %v, want >= 1", v)
	}
}

// TestSSEReconnectReResolvesMovedReplica covers the third failure mode: a
// replica moves to a new address mid-stream (container rescheduled).  The
// gateway's upstream pump must re-resolve the replica through
// Options.Resolver, reconnect with its upstream Last-Event-ID, and deliver
// the terminal transition to downstream watchers as if nothing happened.
func TestSSEReconnectReResolvesMovedReplica(t *testing.T) {
	gate := make(chan struct{})
	adapter.RegisterFunc("gwtest.moved", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-gate:
			return core.Values{"sum": 7}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	r1 := startReplica(t, "r01", numService(t, "moved", "gwtest.moved", false))

	var currentBase atomic.Value
	currentBase.Store(r1.srv.URL)
	opts := gateway.Options{
		Resolver: func(name string) (string, bool) {
			return currentBase.Load().(string), true
		},
	}
	_, gw := startGateway(t, opts, r1)

	resp, job := postJSON(t, gw.URL+"/services/moved", core.Values{"a": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	jobID := job["id"].(string)

	ch := make(chan events.Event, 16)
	go sseWatch(t, gw.URL+"/services/moved/jobs/"+jobID+"/events", ch)
	select {
	case ev := <-ch:
		if ev.Type != events.TypeJob {
			t.Fatalf("opening frame type %q", ev.Type)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no opening frame")
	}

	// Move the replica: same container, new listener.  The old address goes
	// dark with connections cut, as a rescheduled container would.
	moved := httptest.NewServer(r1.c.Handler())
	t.Cleanup(moved.Close)
	currentBase.Store(moved.URL)
	r1.srv.CloseClientConnections()
	r1.srv.Close()

	// Give the pump a moment to lose the connection, then finish the job on
	// the moved replica.
	time.Sleep(200 * time.Millisecond)
	close(gate)

	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("stream closed before terminal frame")
			}
			if ev.End {
				var j core.Job
				if err := json.Unmarshal(ev.Data, &j); err != nil {
					t.Fatalf("terminal frame: %v", err)
				}
				if j.State != core.StateDone {
					t.Fatalf("terminal state %s", j.State)
				}
				return
			}
		case <-deadline:
			t.Fatal("no terminal frame after replica move")
		}
	}
}
