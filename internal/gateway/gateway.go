// Package gateway implements the federated routing tier of the platform
// (DESIGN.md §5h): one thin process (cmd/mcgw) exposing the unified REST API
// of Table 1 unchanged while fanning requests out over N container replicas.
//
// Routing is stateless by construction.  Every replica runs with a replica
// identity (container.Options.ReplicaID), so each job, sweep and file ID it
// mints carries its home replica as an affinity prefix ("r03-<id>",
// core.TagID).  A request about an existing resource therefore routes in
// O(1) — parse the prefix, forward — with no shared lookup table, no session
// state, and no coordination between gateway instances.  Requests that
// create resources are placed by rendezvous-hashed service placement spread
// round-robin across healthy replicas advertising the service, with a
// memo-hint table short-circuiting deterministic resubmissions to the
// replica whose computation cache already holds the answer.
//
// Replica health is fed by catalogue pings: the gateway registers every
// (replica, service) pair in an embedded catalogue.Catalogue whose periodic
// availability sweeps (bounded fan-out, per-probe deadlines) maintain the
// marks placement consults, complemented by a passive path that marks a
// replica down the moment a proxied request fails to reach it.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mathcloud/internal/catalogue"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/rest"
)

// Replica names one container replica of the federation.
type Replica struct {
	// Name is the replica identity, matching the container's
	// Options.ReplicaID (core.ValidReplicaName).
	Name string
	// BaseURL is the replica's externally reachable base URL as seen from
	// the gateway.
	BaseURL string
}

// Options configure a gateway.
type Options struct {
	// Replicas is the federation membership.  The set is fixed for the
	// gateway's lifetime; a replica that moves is re-resolved through
	// Resolver.
	Replicas []Replica
	// HTTPClient performs proxied requests; nil uses a client over the
	// shared tuned transport with no overall timeout (long-polls and file
	// streams must be able to outlive any fixed budget; request contexts
	// bound them instead).
	HTTPClient *http.Client
	// PingInterval paces the health loop: the replica index refresh and the
	// catalogue availability sweeps.  Zero selects the default (5s); a
	// negative value disables the background loop (tests drive
	// RefreshHealth explicitly).
	PingInterval time.Duration
	// FanoutTimeout is the per-replica deadline of scatter-gather requests
	// and health probes (default 5s).  A replica that cannot answer inside
	// it contributes a Warning header instead of stalling the response.
	FanoutTimeout time.Duration
	// MaxWaitWindow caps the idle window of gateway SSE streams, mirroring
	// the container option.  Zero selects the default (60s); negative
	// removes the cap.
	MaxWaitWindow time.Duration
	// MemoHintMax bounds the digest→replica hint table (default 65536
	// entries).
	MemoHintMax int
	// LoadInterval paces the federation reuse loop: each tick polls every
	// replica's /load report (feeding power-of-two-choices placement and
	// admission control) and /memo delta feed (feeding the shared memo
	// index).  Zero selects the default (2s); a negative value disables
	// the background loop (tests drive RefreshLoad explicitly).
	LoadInterval time.Duration
	// PlacementPolicy selects the submission spread: "p2c" (default,
	// power-of-two-choices over advertised queue depth) or "rr" (legacy
	// blind round-robin, kept as an ablation/escape hatch).
	PlacementPolicy string
	// Resolver, when non-nil, re-resolves the base URL of a named replica
	// that stopped answering at its last known address (a rescheduled
	// container).  It is consulted before routing to an unhealthy replica
	// and on every SSE reconnect.
	Resolver func(name string) (baseURL string, ok bool)
	// Logger receives gateway lifecycle logs; nil uses log.Default.
	Logger *log.Logger
}

// replicaState is the gateway's view of one replica.
type replicaState struct {
	name string

	mu      sync.RWMutex
	base    string
	healthy bool
	// services is the replica's advertised service set from its last index
	// fetch, by name.
	services map[string]core.ServiceDescription
	checked  time.Time
	// load is the replica's last advertised load report (loadOK false until
	// the first successful poll); memoSeq is the cursor into its memo index
	// delta feed.
	load    core.LoadReport
	loadOK  bool
	memoSeq uint64
}

func (rs *replicaState) baseURL() string {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.base
}

func (rs *replicaState) isHealthy() bool {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.healthy
}

// loadReport returns the replica's last advertised load, reporting whether
// one has been received.
func (rs *replicaState) loadReport() (core.LoadReport, bool) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.load, rs.loadOK
}

// queueDepth is the placement signal: the replica's advertised queued-job
// count, 0 until the first load poll (an unknown replica looks idle, so it
// is probed with work rather than starved).
func (rs *replicaState) queueDepth() int {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	if !rs.loadOK {
		return 0
	}
	return rs.load.QueueDepth
}

// describe returns the replica's advertised description of one service.
func (rs *replicaState) describe(service string) (core.ServiceDescription, bool) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	d, ok := rs.services[service]
	return d, ok
}

// serviceURI is the catalogue registration key of one service on this
// replica: the service resource at the replica's current base.
func (rs *replicaState) serviceURI(service string) string {
	return rs.baseURL() + "/services/" + service
}

// Gateway routes the unified REST API across container replicas.
type Gateway struct {
	client     *http.Client
	api        *client.Client
	fanout     time.Duration
	maxWait    time.Duration
	resolver   func(string) (string, bool)
	logger     *log.Logger
	cat        *catalogue.Catalogue
	bus        *events.Bus
	sse        *sseMux
	hints      *hintTable
	memo       *memoIndex
	placement  string          // "p2c" or "rr"
	replicas   []*replicaState // fixed order (Options.Replicas)
	byName     map[string]*replicaState
	rrCursor   atomic.Uint64
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
	pingEvery  time.Duration
	loadEvery  time.Duration
	healthOnce sync.Mutex // serializes RefreshHealth sweeps
	loadOnce   sync.Mutex // serializes RefreshLoad sweeps

	// topoGen counts topology changes (health marks, service sets); the
	// per-service candidate cache is invalidated by generation, so steady
	// state placement never rescans and re-sorts the replica list.
	topoGen   atomic.Uint64
	candMu    sync.Mutex
	candCache map[string]*candEntry
}

// defaultMaxWaitWindow mirrors the container default for SSE idle streams.
const defaultMaxWaitWindow = 60 * time.Second

// New creates a gateway over the given replica set and runs one synchronous
// health sweep, so placement works the moment it returns.
func New(opts Options) (*Gateway, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: no replicas configured")
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	httpClient := opts.HTTPClient
	if httpClient == nil {
		// No overall timeout: proxied long-polls and file streams are
		// bounded by their request contexts, not by a fixed budget.
		httpClient = &http.Client{Transport: rest.SharedTransport}
	}
	fanout := opts.FanoutTimeout
	if fanout <= 0 {
		fanout = 5 * time.Second
	}
	maxWait := opts.MaxWaitWindow
	if maxWait == 0 {
		maxWait = defaultMaxWaitWindow
	} else if maxWait < 0 {
		maxWait = 0
	}
	hintMax := opts.MemoHintMax
	if hintMax <= 0 {
		hintMax = 65536
	}
	placement := opts.PlacementPolicy
	if placement == "" {
		placement = placementP2C
	}
	if placement != placementP2C && placement != placementRR {
		return nil, fmt.Errorf("gateway: unknown placement policy %q (want p2c or rr)", placement)
	}
	g := &Gateway{
		client:    httpClient,
		api:       &client.Client{HTTP: httpClient},
		fanout:    fanout,
		maxWait:   maxWait,
		resolver:  opts.Resolver,
		logger:    logger,
		bus:       events.NewBus(events.Options{}),
		hints:     newHintTable(hintMax),
		memo:      newMemoIndex(),
		placement: placement,
		byName:    make(map[string]*replicaState, len(opts.Replicas)),
		candCache: make(map[string]*candEntry),
		stop:      make(chan struct{}),
		pingEvery: opts.PingInterval,
		loadEvery: opts.LoadInterval,
	}
	// The catalogue probes replica service resources over HTTP through the
	// gateway's own proxy client, so its availability marks reflect exactly
	// the path proxied requests will take.
	g.cat = catalogue.New(catalogue.ClientDescriber{Client: &client.Client{HTTP: httpClient}})
	g.sse = newSSEMux(g)
	for _, r := range opts.Replicas {
		if !core.ValidReplicaName(r.Name) {
			return nil, fmt.Errorf("gateway: invalid replica name %q (want 1-16 of [a-z0-9])", r.Name)
		}
		if _, dup := g.byName[r.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate replica name %q", r.Name)
		}
		rs := &replicaState{
			name:     r.Name,
			base:     trimBase(r.BaseURL),
			services: make(map[string]core.ServiceDescription),
		}
		g.replicas = append(g.replicas, rs)
		g.byName[r.Name] = rs
	}
	g.RefreshHealth(context.Background())
	g.RefreshLoad(context.Background())
	interval := opts.PingInterval
	if interval == 0 {
		interval = 5 * time.Second
	}
	if interval > 0 {
		probeTimeout := fanout
		if probeTimeout > interval {
			probeTimeout = interval
		}
		g.cat.SetSweepOptions(0, probeTimeout)
		g.cat.StartPinger(interval)
		g.wg.Add(1)
		go g.healthLoop(interval)
	}
	loadEvery := opts.LoadInterval
	if loadEvery == 0 {
		loadEvery = 2 * time.Second
	}
	if loadEvery > 0 {
		g.loadEvery = loadEvery
		g.wg.Add(1)
		go g.loadLoop(loadEvery)
	}
	return g, nil
}

func trimBase(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Close stops the health loop, the catalogue pinger and every SSE pump, and
// releases all downstream event streams.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	g.cat.Close()
	g.sse.close()
	g.bus.Close()
}

// Catalogue exposes the gateway's embedded service catalogue (search, tags,
// availability marks).
func (g *Gateway) Catalogue() *catalogue.Catalogue { return g.cat }

func (g *Gateway) healthLoop(interval time.Duration) {
	defer g.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			g.RefreshHealth(ctx)
			cancel()
		case <-g.stop:
			return
		}
	}
}

// loadLoop is the federation reuse loop: at LoadInterval cadence it pulls
// every replica's load report and memo index deltas.
func (g *Gateway) loadLoop(interval time.Duration) {
	defer g.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			g.RefreshLoad(ctx)
			cancel()
		case <-g.stop:
			return
		}
	}
}

// RefreshLoad polls every healthy replica once, concurrently: GET /load
// feeds the placement policy's queue-depth view and admission control, and
// GET /memo?since={cursor} advances the shared memo index.  A replica that
// fails the poll keeps its last load report but is marked load-unknown, so
// placement treats it as idle rather than pinning traffic elsewhere.
func (g *Gateway) RefreshLoad(ctx context.Context) {
	g.loadOnce.Lock()
	defer g.loadOnce.Unlock()
	var wg sync.WaitGroup
	for _, rs := range g.replicas {
		if !rs.isHealthy() {
			continue
		}
		wg.Add(1)
		go func(rs *replicaState) {
			defer wg.Done()
			g.pollReplicaLoad(ctx, rs)
		}(rs)
	}
	wg.Wait()
}

// pollReplicaLoad performs one replica's load + memo-delta poll.
func (g *Gateway) pollReplicaLoad(ctx context.Context, rs *replicaState) {
	pctx, cancel := context.WithTimeout(ctx, g.fanout)
	defer cancel()
	base := rs.baseURL()
	report, err := g.api.Load(pctx, base)
	rs.mu.Lock()
	if err != nil {
		rs.loadOK = false
	} else {
		rs.load = report
		rs.loadOK = true
	}
	since := rs.memoSeq
	rs.mu.Unlock()
	if err != nil {
		return
	}
	page, err := g.api.MemoIndex(pctx, base, since)
	if err != nil {
		return
	}
	g.memo.apply(rs.name, page)
	rs.mu.Lock()
	rs.memoSeq = page.Seq
	rs.mu.Unlock()
}

// indexDoc is the container index representation the health sweep consumes.
type indexDoc struct {
	Container string                    `json:"container"`
	Replica   string                    `json:"replica"`
	Services  []core.ServiceDescription `json:"services"`
}

// RefreshHealth probes every replica's index once, concurrently with
// per-replica deadlines, updating health marks, advertised service sets and
// the catalogue registrations placement and search consult.  It is the
// active half of health; proxy failures feed the passive half
// (markReplicaDown) between sweeps.
func (g *Gateway) RefreshHealth(ctx context.Context) {
	g.healthOnce.Lock()
	defer g.healthOnce.Unlock()
	var wg sync.WaitGroup
	for _, rs := range g.replicas {
		wg.Add(1)
		go func(rs *replicaState) {
			defer wg.Done()
			g.probeReplica(ctx, rs)
		}(rs)
	}
	wg.Wait()
	healthy := 0
	for _, rs := range g.replicas {
		if rs.isHealthy() {
			healthy++
		}
	}
	metGwHealthy.Set(float64(healthy))
}

// probeReplica fetches one replica's index and reconciles the gateway's view
// of it.
func (g *Gateway) probeReplica(ctx context.Context, rs *replicaState) {
	pctx, cancel := context.WithTimeout(ctx, g.fanout)
	defer cancel()
	base := rs.baseURL()
	doc, err := g.fetchIndex(pctx, base)
	if err != nil && g.resolver != nil {
		// The replica may have moved; ask the resolver for its current
		// address and retry once.
		if newBase, ok := g.resolver(rs.name); ok && trimBase(newBase) != base {
			base = trimBase(newBase)
			doc, err = g.fetchIndex(pctx, base)
		}
	}
	now := time.Now()
	if err != nil {
		rs.mu.Lock()
		wasHealthy := rs.healthy
		rs.healthy = false
		rs.checked = now
		stale := make([]string, 0, len(rs.services))
		for name := range rs.services {
			stale = append(stale, name)
		}
		rs.mu.Unlock()
		if wasHealthy {
			g.topoGen.Add(1)
			g.logger.Printf("gateway: replica %s unreachable: %v", rs.name, err)
		}
		for _, name := range stale {
			g.cat.MarkUnavailable(rs.serviceURI(name))
		}
		return
	}
	services := make(map[string]core.ServiceDescription, len(doc.Services))
	for _, d := range doc.Services {
		services[d.Name] = d
	}
	rs.mu.Lock()
	rs.base = base
	old := rs.services
	rs.services = services
	wasHealthy := rs.healthy
	rs.healthy = true
	rs.checked = now
	rs.mu.Unlock()
	changed := !wasHealthy || len(old) != len(services)
	if !changed {
		for name := range services {
			if _, known := old[name]; !known {
				changed = true
				break
			}
		}
	}
	if changed {
		g.topoGen.Add(1)
	}
	// Reconcile catalogue registrations: new services are published (the
	// catalogue fetches and indexes their full description), departed ones
	// are withdrawn.  Existing entries are refreshed by the catalogue's own
	// availability sweeps.
	for name := range services {
		if _, known := old[name]; !known {
			if _, err := g.cat.Register(ctx, rs.serviceURI(name), []string{rs.name}); err != nil {
				g.logger.Printf("gateway: register %s/%s: %v", rs.name, name, err)
			}
		}
	}
	for name := range old {
		if _, still := services[name]; !still {
			_ = g.cat.Unregister(rs.serviceURI(name))
		}
	}
}

func (g *Gateway) fetchIndex(ctx context.Context, base string) (*indexDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		rest.Drain(resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/: %s", base, resp.Status)
	}
	var doc indexDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("GET %s/: %w", base, err)
	}
	return &doc, nil
}

// markReplicaDown is the passive health path: a proxied request failed to
// reach the replica, so placement must stop sending work there before the
// next active sweep notices.
func (g *Gateway) markReplicaDown(rs *replicaState, err error) {
	rs.mu.Lock()
	wasHealthy := rs.healthy
	rs.healthy = false
	rs.checked = time.Now()
	names := make([]string, 0, len(rs.services))
	for name := range rs.services {
		names = append(names, name)
	}
	rs.mu.Unlock()
	metGwProxyErrors.With(rs.name).Inc()
	if wasHealthy {
		g.topoGen.Add(1)
		g.logger.Printf("gateway: marking replica %s down: %v", rs.name, err)
		for _, name := range names {
			g.cat.MarkUnavailable(rs.serviceURI(name))
		}
	}
}

// reviveReplica is the optimistic counterpart: an affinity-routed request to
// a replica marked down succeeded after all (the mark was stale), so
// placement may use it again.
func (g *Gateway) reviveReplica(rs *replicaState) {
	rs.mu.Lock()
	was := rs.healthy
	rs.healthy = true
	rs.checked = time.Now()
	rs.mu.Unlock()
	if !was {
		g.topoGen.Add(1)
		g.logger.Printf("gateway: replica %s answered again", rs.name)
	}
}

// Replicas reports the gateway's current view of the federation, in
// configuration order.
type ReplicaStatus struct {
	Name     string    `json:"name"`
	BaseURL  string    `json:"baseURL"`
	Healthy  bool      `json:"healthy"`
	Services []string  `json:"services"`
	Checked  time.Time `json:"lastChecked"`
}

// Replicas returns the health view served at GET /replicas.
func (g *Gateway) Replicas() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(g.replicas))
	for _, rs := range g.replicas {
		rs.mu.RLock()
		st := ReplicaStatus{
			Name:    rs.name,
			BaseURL: rs.base,
			Healthy: rs.healthy,
			Checked: rs.checked,
		}
		for name := range rs.services {
			st.Services = append(st.Services, name)
		}
		rs.mu.RUnlock()
		sort.Strings(st.Services)
		out = append(out, st)
	}
	return out
}

// Handler returns the gateway's HTTP handler with the standard ingress
// instrumentation (request IDs, per-route metrics, request logs) — the same
// middleware the container uses, so one /metrics view covers both tiers.
func (g *Gateway) Handler() http.Handler {
	return container.Instrument(g.APIHandler())
}
