package gateway

import (
	"fmt"
	"testing"

	"mathcloud/internal/core"
)

func TestRendezvousScoreIsDeterministic(t *testing.T) {
	if rendezvousScore("svc", "r01") != rendezvousScore("svc", "r01") {
		t.Fatal("rendezvous score not stable across calls")
	}
	if rendezvousScore("svc", "r01") == rendezvousScore("svc", "r02") {
		t.Fatal("distinct replicas collide (astronomically unlikely with FNV-1a)")
	}
	if rendezvousScore("svc-a", "r01") == rendezvousScore("svc-b", "r01") {
		t.Fatal("distinct services collide for the same replica")
	}
}

// newTestGateway builds a placement-only gateway: replicas with advertised
// services and health marks, no HTTP.
func newTestGateway(services map[string][]string, healthy map[string]bool) *Gateway {
	g := &Gateway{
		byName:    make(map[string]*replicaState),
		hints:     newHintTable(64),
		memo:      newMemoIndex(),
		candCache: make(map[string]*candEntry),
		placement: placementRR,
	}
	for name, svcs := range services {
		rs := &replicaState{
			name:     name,
			healthy:  healthy[name],
			services: make(map[string]core.ServiceDescription),
		}
		for _, s := range svcs {
			rs.services[s] = core.ServiceDescription{Name: s}
		}
		g.replicas = append(g.replicas, rs)
		g.byName[name] = rs
	}
	return g
}

func TestServiceReplicasFiltersAndOrders(t *testing.T) {
	g := newTestGateway(
		map[string][]string{
			"r01": {"add"},
			"r02": {"add", "mul"},
			"r03": {"mul"},
			"r04": {"add"},
		},
		map[string]bool{"r01": true, "r02": true, "r03": true, "r04": false},
	)
	got := g.serviceReplicas("add")
	if len(got) != 2 {
		t.Fatalf("candidates for add: %d, want 2 (r04 is down)", len(got))
	}
	for _, rs := range got {
		if rs.name == "r04" || rs.name == "r03" {
			t.Fatalf("candidate %s should be excluded", rs.name)
		}
	}
	// The order is the rendezvous ranking and must be reproducible.
	again := g.serviceReplicas("add")
	for i := range got {
		if got[i].name != again[i].name {
			t.Fatal("rendezvous order not stable")
		}
	}
	if !g.serviceKnown("add") || g.serviceKnown("nope") {
		t.Fatal("serviceKnown wrong")
	}
	// r04 is down but advertised add at some point: known, yet no healthy
	// home when all advertisers vanish.
	if _, ok := g.homeReplica("nope"); ok {
		t.Fatal("homeReplica for unknown service")
	}
}

func TestSpreadRoundRobins(t *testing.T) {
	g := newTestGateway(
		map[string][]string{"r01": {"s"}, "r02": {"s"}, "r03": {"s"}},
		map[string]bool{"r01": true, "r02": true, "r03": true},
	)
	candidates := g.serviceReplicas("s")
	seen := make(map[string]int)
	for i := 0; i < 9; i++ {
		seen[g.spreadReplica(candidates).name]++
	}
	for name, n := range seen {
		if n != 3 {
			t.Fatalf("replica %s got %d of 9 submissions, want 3", name, n)
		}
	}
}

func TestHintTableGenerationsAndForget(t *testing.T) {
	h := newHintTable(8) // generation flips at 4 entries
	for i := 0; i < 4; i++ {
		h.put(fmt.Sprintf("k%d", i), "r01")
	}
	// Touch k0 so it survives the flip by promotion.
	h.put("k4", "r02") // flips: k0..k3 move to the old generation
	if v, ok := h.get("k0"); !ok || v != "r01" {
		t.Fatalf("k0 lost after one flip: %v %v", v, ok)
	}
	// k0 was promoted into the young generation; a second flip drops the
	// rest of the old cohort but keeps promoted entries one round longer.
	for i := 5; i < 9; i++ {
		h.put(fmt.Sprintf("k%d", i), "r02")
	}
	if _, ok := h.get("k0"); !ok {
		t.Fatal("promoted hint did not survive the next flip")
	}

	h.forget("r02")
	if _, ok := h.get("k4"); ok {
		t.Fatal("forget left a hint pointing at the dropped replica")
	}
	if _, ok := h.get("k0"); !ok {
		t.Fatal("forget removed hints of other replicas")
	}
}

func TestSplitResource(t *testing.T) {
	cases := []struct{ in, resource, id string }{
		{"/services/x/jobs/abc/events", "/services/x/jobs/abc", "abc"},
		{"/services/x/sweeps/r01-ff/events", "/services/x/sweeps/r01-ff", "r01-ff"},
		{"/services/x/events", "/services/x", "x"},
	}
	for _, c := range cases {
		res, id := splitResource(c.in)
		if res != c.resource || id != c.id {
			t.Fatalf("splitResource(%q) = (%q, %q), want (%q, %q)", c.in, res, id, c.resource, c.id)
		}
	}
}

func TestStatusClass(t *testing.T) {
	if statusClass(200) != "2xx" || statusClass(404) != "4xx" || statusClass(502) != "5xx" {
		t.Fatal("statusClass wrong")
	}
}
