package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/gateway"
)

// TestSharedMemoIndexServesResubmissionAcrossGateways is the federation-wide
// result-reuse end-to-end check: a deterministic job computed through one
// gateway is answered from the holding replica's cache when an identical
// submission arrives at a DIFFERENT gateway instance — one with no hint
// table history — because the second gateway learned the digest→replica
// mapping from the replicas' memo delta feeds.
func TestSharedMemoIndexServesResubmissionAcrossGateways(t *testing.T) {
	var calls atomic.Int64
	adapter.RegisterFunc("gwtest.fedmemo", func(ctx context.Context, in core.Values) (core.Values, error) {
		calls.Add(1)
		a, _ := in["a"].(float64)
		b, _ := in["b"].(float64)
		return core.Values{"sum": a + b}, nil
	})
	r1 := startReplica(t, "r01", numService(t, "fadd", "gwtest.fedmemo", true))
	r2 := startReplica(t, "r02", numService(t, "fadd", "gwtest.fedmemo", true))
	_, gwA := startGateway(t, gateway.Options{LoadInterval: -1}, r1, r2)

	inputs := core.Values{"a": 19.0, "b": 23.0}
	resp, job := postJSON(t, gwA.URL+"/services/fadd?wait=15s", inputs)
	if resp.StatusCode != http.StatusCreated || job["state"] != "DONE" {
		t.Fatalf("first submit: status %d state %v", resp.StatusCode, job["state"])
	}
	holder := resp.Header.Get(container.ReplicaHeader)
	if calls.Load() != 1 {
		t.Fatalf("adapter ran %d times after first submit, want 1", calls.Load())
	}

	// A second, independent gateway over the same replicas: fresh process
	// state, no hints.  It must NOT reset the replicas' base URLs (that
	// would wipe their memo caches), so it is built without startGateway.
	gB, err := gateway.New(gateway.Options{
		Replicas: []gateway.Replica{
			{Name: "r01", BaseURL: r1.srv.URL},
			{Name: "r02", BaseURL: r2.srv.URL},
		},
		PingInterval: -1,
		LoadInterval: -1,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatalf("second gateway: %v", err)
	}
	t.Cleanup(gB.Close)
	gwB := httptest.NewServer(gB.Handler())
	t.Cleanup(gwB.Close)
	gB.RefreshLoad(context.Background()) // pull the memo index feeds

	before := metricValue(t, gwB.URL, "mc_gateway_memo_index_hits_total")
	resp2, job2 := postJSON(t, gwB.URL+"/services/fadd?wait=15s", inputs)
	if resp2.StatusCode != http.StatusCreated || job2["state"] != "DONE" {
		t.Fatalf("resubmit via second gateway: status %d state %v", resp2.StatusCode, job2["state"])
	}
	if got := resp2.Header.Get(container.ReplicaHeader); got != holder {
		t.Fatalf("resubmission served by %q, cache lives on %q", got, holder)
	}
	if sum := job2["outputs"].(map[string]any)["sum"].(float64); sum != 42.0 {
		t.Fatalf("resubmission sum = %v", sum)
	}
	if calls.Load() != 1 {
		t.Fatalf("adapter ran %d times in total, want 1 (second submit must be a cache hit)", calls.Load())
	}
	if after := metricValue(t, gwB.URL, "mc_gateway_memo_index_hits_total"); after != before+1 {
		t.Fatalf("memo index hits %v -> %v, want +1", before, after)
	}
}

// TestCrossReplicaFileFetchTransfersBlobOnce pins the file plane half of
// federation reuse: a job placed on a replica that does not hold its input
// file pulls the blob from the owning replica exactly once, and every later
// consumer on that replica reads the local copy.
func TestCrossReplicaFileFetchTransfersBlobOnce(t *testing.T) {
	var calls atomic.Int64
	adapter.RegisterRequestFunc("gwtest.flen", func(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
		calls.Add(1)
		data, err := os.ReadFile(req.Files["f"])
		if err != nil {
			return nil, err
		}
		return &adapter.Result{Outputs: core.Values{"len": float64(len(data))}}, nil
	})
	fileSvc := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "flen", Version: "1",
			Inputs:  []core.Param{{Name: "f"}},
			Outputs: []core.Param{{Name: "len"}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "gwtest.flen"}),
		},
	}
	r1 := startReplica(t, "r01", fileSvc)
	r2 := startReplica(t, "r02", fileSvc)
	_, gw := startGateway(t, gateway.Options{LoadInterval: -1}, r1, r2)

	// Upload straight to r01, so the minted ID carries its prefix.
	payload := bytes.Repeat([]byte("foreign blob "), 777)
	up, err := http.Post(r1.srv.URL+"/files", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var uploaded map[string]string
	if err := json.NewDecoder(up.Body).Decode(&uploaded); err != nil {
		t.Fatalf("upload decode: %v", err)
	}
	up.Body.Close()
	fileID := uploaded["id"]
	if prefix, _ := core.SplitReplicaID(fileID); prefix != "r01" {
		t.Fatalf("file ID %q not minted on r01", fileID)
	}

	before := metricValue(t, gw.URL, "mc_filestore_remote_fetch_total")
	// Two jobs consuming the foreign file, both forced onto r02 by direct
	// submission (the service is non-deterministic, so both execute).
	for i := 0; i < 2; i++ {
		resp, job := postJSON(t, r2.srv.URL+"/services/flen?wait=15s",
			core.Values{"f": core.FileRef(fileID)})
		if resp.StatusCode != http.StatusCreated || job["state"] != "DONE" {
			t.Fatalf("job %d on r02: status %d state %v (%v)", i, resp.StatusCode, job["state"], job["error"])
		}
		if n := job["outputs"].(map[string]any)["len"].(float64); n != float64(len(payload)) {
			t.Fatalf("job %d read %v bytes, want %d", i, n, len(payload))
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("adapter ran %d times, want 2", calls.Load())
	}
	after := metricValue(t, gw.URL, "mc_filestore_remote_fetch_total")
	if after != before+1 {
		t.Fatalf("remote fetches %v -> %v, want exactly one transfer for two consumers", before, after)
	}
	// The pulled blob is now local to r02 and readable there directly.
	dl, err := http.Get(r2.srv.URL + "/files/" + fileID)
	if err != nil {
		t.Fatalf("local read on r02: %v", err)
	}
	defer dl.Body.Close()
	if dl.StatusCode != http.StatusOK {
		t.Fatalf("local read on r02: status %d", dl.StatusCode)
	}
}
