package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mathcloud/internal/catalogue"
	"mathcloud/internal/core"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// APIHandler returns the gateway's routing handler without the ingress
// instrumentation (see Handler).  It exposes the unified REST API of
// Table 1 unchanged — clients built against a single container work against
// the federation without modification — plus two gateway-level resources:
//
//	GET /search       full-text search over the federated catalogue
//	GET /replicas     federation health view
//
// Requests about existing resources (jobs, sweeps, files) route in O(1) by
// the replica prefix of their IDs; resource creation is placed by
// rendezvous+round-robin with memo hints; collection reads scatter-gather.
func (g *Gateway) APIHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		head, tail := rest.ShiftPath(r.URL.Path)
		switch head {
		case "metrics":
			obs.MetricsHandler().ServeHTTP(w, r)
		case "status":
			obs.StatusHandler().ServeHTTP(w, r)
		case "":
			g.handleIndex(w, r)
		case "replicas":
			g.handleReplicas(w, r)
		case "search":
			g.handleSearch(w, r)
		case "services":
			g.handleServices(w, r, tail)
		case "files":
			g.handleFiles(w, r, tail)
		default:
			rest.WriteError(w, core.ErrNotFound("resource", head))
		}
	})
}

func (g *Gateway) handleReplicas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{"replicas": g.Replicas()})
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	q := r.URL.Query()
	limit := 0
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			rest.WriteError(w, core.ErrBadRequest("invalid limit %q", s))
			return
		}
		limit = n
	}
	avail := q.Get("available") == "true" || q.Get("available") == "1"
	results := g.cat.Search(q.Get("q"), catalogue.SearchOptions{
		Tag:           q.Get("tag"),
		OnlyAvailable: avail,
		Limit:         limit,
	})
	if results == nil {
		results = []catalogue.Result{}
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{
		"query":   q.Get("q"),
		"results": results,
		"total":   len(results),
	})
}

func (g *Gateway) handleServices(w http.ResponseWriter, r *http.Request, path string) {
	name, tail := rest.ShiftPath(path)
	if name == "" {
		rest.WriteError(w, core.ErrBadRequest("missing service name"))
		return
	}
	if tail == "/" {
		switch r.Method {
		case http.MethodGet:
			rs, ok := g.homeReplica(name)
			if !ok {
				g.noReplica(w, name)
				return
			}
			g.forward(w, r, rs, "service", nil)
		case http.MethodPost:
			g.handleSubmit(w, r, name)
		default:
			rest.MethodNotAllowed(w, http.MethodGet, http.MethodPost)
		}
		return
	}
	sub, rest2 := rest.ShiftPath(tail)
	switch sub {
	case "jobs":
		jobID, rest3 := rest.ShiftPath(rest2)
		if jobID == "" {
			g.handleListFanout(w, r, name, "jobs")
			return
		}
		rs, err := g.affinityReplica(jobID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if child, _ := rest.ShiftPath(rest3); child == "events" {
			g.serveResourceStream(w, r, rs, "job")
			return
		}
		g.forward(w, r, rs, "job", nil)
	case "sweeps":
		sweepID, rest3 := rest.ShiftPath(rest2)
		if sweepID == "" {
			switch r.Method {
			case http.MethodPost:
				g.handleSweepSubmit(w, r, name)
			case http.MethodGet:
				g.handleListFanout(w, r, name, "sweeps")
			default:
				rest.MethodNotAllowed(w, http.MethodGet, http.MethodPost)
			}
			return
		}
		rs, err := g.affinityReplica(sweepID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if child, _ := rest.ShiftPath(rest3); child == "events" {
			g.serveResourceStream(w, r, rs, "sweep")
			return
		}
		// The sweep resource and its child-job listing both live whole on
		// the sweep's home replica: children inherit the sweep's replica
		// prefix at mint time, so one affinity hop covers the campaign.
		g.forward(w, r, rs, "sweep", nil)
	case "events":
		g.serveServiceFeed(w, r, name)
	default:
		rest.WriteError(w, core.ErrNotFound("resource", sub))
	}
}

// handleSubmit places one job submission: the body is buffered (it is a
// bounded JSON document by API contract), parsed for memo-hint computation,
// and forwarded byte-identical to the placed replica.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request, service string) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rest.MaxBodyBytes))
	if err != nil {
		rest.WriteError(w, core.ErrBadRequest("read request body: %v", err))
		return
	}
	// A body that does not parse as a value map still forwards — the
	// replica owns input validation and its 400 passes through unchanged —
	// it just cannot produce a memo hint.
	var inputs core.Values
	if len(raw) > 0 {
		_ = json.Unmarshal(raw, &inputs)
	}
	rs, key, hinted, err := g.routeSubmit(service, inputs)
	if err != nil {
		// Admission control: every candidate advertises a full queue, so a
		// proxy hop would only buy a replica-side rejection.
		rest.WriteError(w, err)
		return
	}
	if rs == nil {
		g.noReplica(w, service)
		return
	}
	status, ok := g.forward(w, r, rs, "service", raw)
	if ok && status == http.StatusCreated && key != "" && !hinted {
		g.hints.put(key, rs.name)
	}
}

// handleSweepSubmit places a sweep: the whole campaign — the sweep record
// and every child job — lives on one replica, so distinct sweeps spread
// round-robin while each individual campaign keeps single-container
// batching and memoization semantics.
func (g *Gateway) handleSweepSubmit(w http.ResponseWriter, r *http.Request, service string) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rest.MaxBodyBytes))
	if err != nil {
		rest.WriteError(w, core.ErrBadRequest("read request body: %v", err))
		return
	}
	candidates := g.serviceReplicas(service)
	if len(candidates) == 0 {
		g.noReplica(w, service)
		return
	}
	rs, err := g.placeSpread(candidates)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	g.forward(w, r, rs, "sweep", raw)
}

func (g *Gateway) handleFiles(w http.ResponseWriter, r *http.Request, path string) {
	id, _ := rest.ShiftPath(path)
	if id == "" {
		if r.Method != http.MethodPost {
			rest.MethodNotAllowed(w, http.MethodPost)
			return
		}
		// Uploads spread over all healthy replicas; the minted file ID
		// carries the chosen replica's prefix, so later reads and job
		// submissions referencing the file route straight back to the bytes.
		var healthy []*replicaState
		for _, rs := range g.replicas {
			if rs.isHealthy() {
				healthy = append(healthy, rs)
			}
		}
		if len(healthy) == 0 {
			rest.WriteJSON(w, http.StatusBadGateway, rest.ErrorBody{
				Error:  "gateway: no healthy replica for file upload",
				Status: http.StatusBadGateway,
			})
			return
		}
		// The body streams through: file uploads are unbounded, so they are
		// never buffered at the gateway.
		g.forward(w, r, g.spreadReplica(healthy), "file", nil)
		return
	}
	rs, err := g.affinityReplica(id)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	g.forward(w, r, rs, "file", nil)
}

// noReplica distinguishes "no such service in the federation" (404) from
// "service known but no replica can take it right now" (502).
func (g *Gateway) noReplica(w http.ResponseWriter, service string) {
	if !g.serviceKnown(service) {
		rest.WriteError(w, core.ErrNotFound("service", service))
		return
	}
	rest.WriteJSON(w, http.StatusBadGateway, rest.ErrorBody{
		Error:  fmt.Sprintf("gateway: no healthy replica for service %q", service),
		Status: http.StatusBadGateway,
	})
}

// affinityReplica resolves the home replica encoded in a resource ID.  A
// bare (unprefixed) ID is routable only in a single-replica federation —
// there is exactly one place it can live.
func (g *Gateway) affinityReplica(id string) (*replicaState, error) {
	name, ok := core.SplitReplicaID(id)
	if !ok {
		if len(g.replicas) == 1 {
			return g.replicas[0], nil
		}
		return nil, core.ErrNotFound("resource", id)
	}
	rs := g.byName[name]
	if rs == nil {
		return nil, core.ErrNotFound("replica", name)
	}
	return rs, nil
}

// ensureBase re-resolves the base URL of a replica marked unhealthy before
// routing to it, so a rescheduled container is found at its new address
// without waiting for the next health sweep.
func (g *Gateway) ensureBase(rs *replicaState) {
	if g.resolver == nil || rs.isHealthy() {
		return
	}
	if b, ok := g.resolver(rs.name); ok {
		b = trimBase(b)
		rs.mu.Lock()
		rs.base = b
		rs.mu.Unlock()
	}
}

// hopHeaders are the connection-scoped headers a proxy must not forward
// (RFC 9110 §7.6.1).
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// forward proxies the request to one replica, streaming the response back
// through pooled copy buffers.  A non-nil body replaces the request body
// (already buffered by the caller); nil streams r.Body through.  It returns
// the upstream status and whether the upstream answered at all.  Reaching
// the replica at all is what health tracks: a connection-level failure
// marks it down (passive health) and surfaces as 502 Bad Gateway, which the
// client retry policy replays for idempotent methods.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, rs *replicaState, route string, body []byte) (int, bool) {
	g.ensureBase(rs)
	target := rs.baseURL() + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	var reqBody io.Reader = r.Body
	if body != nil {
		// bytes.Reader wires ContentLength and GetBody, so buffered bodies
		// survive transport-level replays.
		reqBody = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, target, reqBody)
	if err != nil {
		rest.WriteError(w, fmt.Errorf("gateway: build upstream request: %w", err))
		return 0, false
	}
	copyHeaders(out.Header, r.Header)
	start := time.Now()
	resp, err := g.client.Do(out)
	if err != nil {
		g.markReplicaDown(rs, err)
		metGwRequests.With(route, rs.name, "error").Inc()
		status := http.StatusBadGateway
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		// The downstream client going away is not a replica fault; there is
		// nobody left to answer anyway.
		if r.Context().Err() == nil {
			rest.WriteJSON(w, status, rest.ErrorBody{
				Error:  fmt.Sprintf("gateway: replica %s unreachable: %v", rs.name, err),
				Status: status,
			})
		}
		return 0, false
	}
	defer resp.Body.Close()
	metGwProxySeconds.With(route).Observe(time.Since(start).Seconds())
	metGwRequests.With(route, rs.name, statusClass(resp.StatusCode)).Inc()
	if !rs.isHealthy() && resp.StatusCode < http.StatusInternalServerError {
		g.reviveReplica(rs)
	}
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	if _, err := rest.Copy(w, resp.Body); err != nil {
		// Mid-stream failure: headers are out, nothing to do but stop.
		return resp.StatusCode, true
	}
	return resp.StatusCode, true
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if isHopHeader(k) {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

func isHopHeader(name string) bool {
	for _, h := range hopHeaders {
		if http.CanonicalHeaderKey(name) == h {
			return true
		}
	}
	return false
}

func statusClass(code int) string {
	return strconv.Itoa(code/100) + "xx"
}

// --- Scatter-gather -------------------------------------------------------

// fanResult is one replica's answer in a scatter-gather round.
type fanResult struct {
	rs   *replicaState
	body []byte
	err  error
}

// scatter fans a GET out to the given replicas with a per-replica deadline
// each, collecting bodies and failures.  The fan-out is bounded: at most
// maxFanout requests are in flight at once, so a wide federation cannot
// exhaust the gateway's connection pool in one index hit.
const maxFanout = 8

func (g *Gateway) scatter(ctx context.Context, replicas []*replicaState, path, query string) []fanResult {
	results := make([]fanResult, len(replicas))
	sem := make(chan struct{}, maxFanout)
	var wg sync.WaitGroup
	for i, rs := range replicas {
		wg.Add(1)
		go func(i int, rs *replicaState) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pctx, cancel := context.WithTimeout(ctx, g.fanout)
			defer cancel()
			target := rs.baseURL() + path
			if query != "" {
				target += "?" + query
			}
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, target, nil)
			if err != nil {
				results[i] = fanResult{rs: rs, err: err}
				return
			}
			req.Header.Set("Accept", "application/json")
			resp, err := g.client.Do(req)
			if err != nil {
				results[i] = fanResult{rs: rs, err: err}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				rest.Drain(resp.Body)
				results[i] = fanResult{rs: rs, err: fmt.Errorf("%s", resp.Status)}
				return
			}
			body, err := io.ReadAll(io.LimitReader(resp.Body, rest.MaxBodyBytes))
			results[i] = fanResult{rs: rs, body: body, err: err}
		}(i, rs)
	}
	wg.Wait()
	return results
}

// warnPartial attaches one Warning header per unreachable replica (RFC 9110
// §5.5 code 199) so callers can tell a complete federation answer from a
// partial one, and records the partial round.
func warnPartial(w http.ResponseWriter, failed []fanResult) {
	for _, f := range failed {
		w.Header().Add("Warning",
			fmt.Sprintf("199 mcgw %q", fmt.Sprintf("replica %s unavailable: %v", f.rs.name, f.err)))
	}
	if len(failed) > 0 {
		metGwFanoutPartial.Inc()
	}
}

// allFailed writes the terminal scatter-gather error: 504 when every
// failure was a deadline, 502 otherwise.
func allFailed(w http.ResponseWriter, failed []fanResult) {
	status := http.StatusGatewayTimeout
	for _, f := range failed {
		if !errors.Is(f.err, context.DeadlineExceeded) {
			status = http.StatusBadGateway
			break
		}
	}
	rest.WriteJSON(w, status, rest.ErrorBody{
		Error:  "gateway: no replica answered",
		Status: status,
	})
}

// handleIndex merges the live container indexes of every replica into one
// federated index: the union of advertised services (deduplicated by name)
// plus the federation health view.
func (g *Gateway) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	results := g.scatter(r.Context(), g.replicas, "/", "")
	var ok, failed []fanResult
	for _, f := range results {
		if f.err == nil {
			ok = append(ok, f)
		} else {
			failed = append(failed, f)
		}
	}
	if len(ok) == 0 {
		allFailed(w, failed)
		return
	}
	seen := make(map[string]bool)
	var services []core.ServiceDescription
	for _, f := range ok {
		var doc indexDoc
		if err := json.Unmarshal(f.body, &doc); err != nil {
			continue
		}
		for _, d := range doc.Services {
			if !seen[d.Name] {
				seen[d.Name] = true
				services = append(services, d)
			}
		}
	}
	sort.Slice(services, func(i, j int) bool { return services[i].Name < services[j].Name })
	if services == nil {
		services = []core.ServiceDescription{}
	}
	warnPartial(w, failed)
	rest.WriteJSON(w, http.StatusOK, map[string]any{
		"container": "mcgw",
		"replicas":  g.Replicas(),
		"services":  services,
	})
}

// handleListFanout merges one collection listing (jobs or sweeps of a
// service) across the replicas advertising it.  Totals are summed; limit
// and offset forward to each replica unchanged, so a page bound applies
// per replica — the trade that keeps the gateway stateless (no cross-
// replica cursor).
func (g *Gateway) handleListFanout(w http.ResponseWriter, r *http.Request, service, kind string) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	candidates := g.serviceReplicas(service)
	if len(candidates) == 0 {
		g.noReplica(w, service)
		return
	}
	results := g.scatter(r.Context(), candidates, r.URL.Path, r.URL.RawQuery)
	var ok, failed []fanResult
	for _, f := range results {
		if f.err == nil {
			ok = append(ok, f)
		} else {
			failed = append(failed, f)
		}
	}
	if len(ok) == 0 {
		allFailed(w, failed)
		return
	}
	merged := []json.RawMessage{}
	total := 0
	for _, f := range ok {
		var page struct {
			Jobs   []json.RawMessage `json:"jobs"`
			Sweeps []json.RawMessage `json:"sweeps"`
			Total  int               `json:"total"`
		}
		if err := json.Unmarshal(f.body, &page); err != nil {
			continue
		}
		if kind == "jobs" {
			merged = append(merged, page.Jobs...)
			total += page.Total
		} else {
			merged = append(merged, page.Sweeps...)
			total += len(page.Sweeps)
		}
	}
	warnPartial(w, failed)
	if kind == "jobs" {
		rest.WriteJSON(w, http.StatusOK, map[string]any{"jobs": merged, "total": total})
		return
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{"sweeps": merged})
}
