package gateway

import "mathcloud/internal/obs"

// Gateway metric families (DESIGN.md §5d, §5h).  Ingress requests are
// already covered by the shared mc_http_* middleware; the series here answer
// the federation-specific questions: where is work going, which replicas are
// failing, and how much the memo hint table saves.
var (
	metGwRequests = obs.NewCounterVec("mc_gateway_requests_total",
		"Requests proxied to a replica, by route class, replica and upstream status class.",
		"route", "replica", "code")
	metGwProxySeconds = obs.NewHistogramVec("mc_gateway_proxy_seconds",
		"Latency of proxied requests from dispatch to upstream response headers.",
		obs.LatencyBuckets, "route")
	metGwHealthy = obs.NewGauge("mc_gateway_replicas_healthy",
		"Replicas currently considered healthy by the gateway.")
	metGwProxyErrors = obs.NewCounterVec("mc_gateway_proxy_errors_total",
		"Proxy attempts that failed to reach a replica (passive health mark), by replica.",
		"replica")
	metGwFanoutPartial = obs.NewCounter("mc_gateway_fanout_partial_total",
		"Scatter-gather responses assembled from a strict subset of replicas (Warning header attached).")
	metGwHintHits = obs.NewCounter("mc_gateway_memo_hint_hits_total",
		"Job submissions routed by the memo hint table to the replica already holding the result.")
	metGwHintStale = obs.NewCounter("mc_gateway_memo_hint_stale_total",
		"Memo hints that pointed at a replica no longer serving the service (fell through to placement).")
	metGwIndexHits = obs.NewCounter("mc_gateway_memo_index_hits_total",
		"Job submissions routed by the shared memo index to the replica whose cache holds the result.")
	metGwAdmissionRejects = obs.NewCounter("mc_gateway_admission_rejections_total",
		"Submissions rejected at the gateway with 503 because every candidate replica was saturated.")
	metGwSSEUpstreams = obs.NewGauge("mc_gateway_sse_upstreams",
		"Upstream SSE connections currently held open to replicas (shared across downstream watchers).")
	metGwSSEWatchers = obs.NewGauge("mc_gateway_sse_watchers",
		"Downstream SSE watchers currently attached to the gateway.")
)
