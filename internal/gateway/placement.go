package gateway

import (
	"hash/fnv"
	"sort"
	"sync"

	"mathcloud/internal/core"
)

// Placement answers one question: which replica should serve this request?
//
// Reads about a service (describe, merged listings) follow rendezvous
// (highest-random-weight) hashing over (service, replica): every gateway
// instance computes the same preference order with no shared state, and the
// order degrades minimally when a replica leaves — only the services that
// ranked it first move.  Work placement (job and sweep submission) must
// instead SPREAD: rendezvous alone would pin each service to one replica and
// cap its throughput at a single container, so submissions round-robin
// across all healthy replicas advertising the service.  Two refinements
// bend the spread toward cache locality:
//
//   - deterministic services consult the memo hint table first: a digest of
//     the canonical submission (core.CanonicalHash) remembered from an
//     earlier dispatch routes an identical resubmission to the replica whose
//     computation cache already holds the result;
//   - the round-robin cursor is gateway-global, not per-service, so mixed
//     workloads still interleave fairly.

// rendezvousScore ranks one (service, replica) pair.  FNV-1a over the joint
// key is cheap, stateless and stable across processes.
func rendezvousScore(service, replica string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(service))
	h.Write([]byte{0})
	h.Write([]byte(replica))
	return h.Sum64()
}

// serviceReplicas returns the healthy replicas currently advertising the
// service, sorted by descending rendezvous score (ties broken by name so the
// order is total).
func (g *Gateway) serviceReplicas(service string) []*replicaState {
	var out []*replicaState
	for _, rs := range g.replicas {
		if !rs.isHealthy() {
			continue
		}
		if _, ok := rs.describe(service); !ok {
			continue
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := rendezvousScore(service, out[i].name), rendezvousScore(service, out[j].name)
		if si != sj {
			return si > sj
		}
		return out[i].name < out[j].name
	})
	return out
}

// serviceKnown reports whether any replica — healthy or not — has ever
// advertised the service, distinguishing "no such service" (404) from "no
// healthy replica right now" (502).
func (g *Gateway) serviceKnown(service string) bool {
	for _, rs := range g.replicas {
		if _, ok := rs.describe(service); ok {
			return true
		}
	}
	return false
}

// homeReplica returns the rendezvous-preferred healthy replica for reads
// about a service.
func (g *Gateway) homeReplica(service string) (*replicaState, bool) {
	c := g.serviceReplicas(service)
	if len(c) == 0 {
		return nil, false
	}
	return c[0], true
}

// spreadReplica picks the next submission target among candidates by
// advancing the gateway-global round-robin cursor.
func (g *Gateway) spreadReplica(candidates []*replicaState) *replicaState {
	n := g.rrCursor.Add(1)
	return candidates[int((n-1)%uint64(len(candidates)))]
}

// routeSubmit places one job submission.  For deterministic services it
// computes the memo key of the submission and consults the hint table; a
// hint pointing at a still-healthy candidate wins (the replica's memo cache
// can answer without recomputing).  Otherwise the submission round-robins.
// The returned key is non-empty when the dispatch should be recorded as a
// hint after the replica accepts it.
func (g *Gateway) routeSubmit(service string, inputs core.Values) (rs *replicaState, key string, hinted bool) {
	candidates := g.serviceReplicas(service)
	if len(candidates) == 0 {
		return nil, "", false
	}
	desc, _ := candidates[0].describe(service)
	if desc.Deterministic {
		// A nil FileDigester hashes file references by literal string.  That
		// is weaker than the container's content digest (two names for the
		// same bytes miss), but the hint table only needs gateway-local
		// determinism: a miss degrades to round-robin, never to a wrong
		// answer — the replica's own memo gate re-derives the real key.
		if k, err := core.CanonicalHash(desc.Name, desc.Version, inputs, nil); err == nil {
			key = k
			if name, ok := g.hints.get(key); ok {
				for _, c := range candidates {
					if c.name == name {
						metGwHintHits.Inc()
						return c, key, true
					}
				}
			}
		}
	}
	return g.spreadReplica(candidates), key, false
}

// hintTable is the bounded digest→replica map behind memo-cache sharing.
// It uses two generations: inserts go to the young map, lookups check both,
// and when the young map fills the old generation is dropped wholesale —
// O(1) amortized eviction with no per-entry bookkeeping, at the cost of
// evicting cohorts instead of strict LRU order.  Hints are advisory, so
// losing a cohort only costs a round-robin dispatch.
type hintTable struct {
	max int

	mu    sync.Mutex
	young map[string]string
	old   map[string]string
}

func newHintTable(max int) *hintTable {
	return &hintTable{
		max:   max,
		young: make(map[string]string),
	}
}

func (t *hintTable) get(key string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.young[key]; ok {
		return v, true
	}
	if v, ok := t.old[key]; ok {
		// Promote so a hot hint survives the next generation flip.
		t.young[key] = v
		return v, true
	}
	return "", false
}

func (t *hintTable) put(key, replica string) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.young) >= t.max/2 {
		t.old = t.young
		t.young = make(map[string]string)
	}
	t.young[key] = replica
}

// forget drops every hint pointing at a replica (used when one is replaced
// rather than restarted, so stale hints do not pin traffic to a cold cache).
func (t *hintTable) forget(replica string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range t.young {
		if v == replica {
			delete(t.young, k)
		}
	}
	for k, v := range t.old {
		if v == replica {
			delete(t.old, k)
		}
	}
}
