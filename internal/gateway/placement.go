package gateway

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"mathcloud/internal/core"
)

// Placement answers one question: which replica should serve this request?
//
// Reads about a service (describe, merged listings) follow rendezvous
// (highest-random-weight) hashing over (service, replica): every gateway
// instance computes the same preference order with no shared state, and the
// order degrades minimally when a replica leaves — only the services that
// ranked it first move.  Work placement (job and sweep submission) must
// instead SPREAD: rendezvous alone would pin each service to one replica and
// cap its throughput at a single container.  Three refinements bend the
// spread toward cache locality and away from hot replicas (DESIGN.md §5j):
//
//   - deterministic services consult the shared memo index first, then the
//     gateway-local hint table: a digest of the canonical submission
//     (core.CanonicalHash) routes an identical resubmission to the replica
//     whose computation cache already holds the result;
//   - fresh placements use power-of-two-choices over the queue depth each
//     replica advertises on GET /load: pick two candidates, send the job to
//     the shorter queue.  P2c tracks load skew exponentially better than
//     blind round-robin while touching only two load samples per decision;
//   - when every candidate advertises a full queue the gateway refuses
//     admission outright (503 + Retry-After) instead of burning a proxy hop
//     on a replica that would reject the job anyway.

// Placement policy names accepted by Options.PlacementPolicy.
const (
	placementP2C = "p2c"
	placementRR  = "rr"
)

// rendezvousScore ranks one (service, replica) pair.  FNV-1a over the joint
// key is cheap, stateless and stable across processes.
func rendezvousScore(service, replica string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(service))
	h.Write([]byte{0})
	h.Write([]byte(replica))
	return h.Sum64()
}

// candEntry caches one service's sorted candidate list.  The entry is valid
// while the gateway topology generation it was computed under still matches
// g.topoGen; any health flip or service-set change bumps the generation and
// lazily invalidates every entry.  This keeps the per-submit cost at one
// atomic load instead of a full replica scan with per-replica locking.
type candEntry struct {
	gen      uint64
	replicas []*replicaState
}

// serviceReplicas returns the healthy replicas currently advertising the
// service, sorted by descending rendezvous score (ties broken by name so the
// order is total).  Results are cached per service until the topology
// generation changes.
func (g *Gateway) serviceReplicas(service string) []*replicaState {
	gen := g.topoGen.Load()
	g.candMu.Lock()
	if e, ok := g.candCache[service]; ok && e.gen == gen {
		out := e.replicas
		g.candMu.Unlock()
		return out
	}
	g.candMu.Unlock()

	var out []*replicaState
	for _, rs := range g.replicas {
		if !rs.isHealthy() {
			continue
		}
		if _, ok := rs.describe(service); !ok {
			continue
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := rendezvousScore(service, out[i].name), rendezvousScore(service, out[j].name)
		if si != sj {
			return si > sj
		}
		return out[i].name < out[j].name
	})

	g.candMu.Lock()
	// Tag the entry with the generation observed BEFORE the scan: if the
	// topology changed mid-scan the entry is already stale and the next
	// caller recomputes.
	g.candCache[service] = &candEntry{gen: gen, replicas: out}
	g.candMu.Unlock()
	return out
}

// serviceKnown reports whether any replica — healthy or not — has ever
// advertised the service, distinguishing "no such service" (404) from "no
// healthy replica right now" (502).
func (g *Gateway) serviceKnown(service string) bool {
	for _, rs := range g.replicas {
		if _, ok := rs.describe(service); ok {
			return true
		}
	}
	return false
}

// homeReplica returns the rendezvous-preferred healthy replica for reads
// about a service.
func (g *Gateway) homeReplica(service string) (*replicaState, bool) {
	c := g.serviceReplicas(service)
	if len(c) == 0 {
		return nil, false
	}
	return c[0], true
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-mixed bijection used to derive two independent candidate indices from
// the monotonically increasing cursor without math/rand (deterministic under
// test, no seed state to share).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// spreadReplica picks the next submission target among candidates.  Under
// the default p2c policy the round-robin cursor nominates the primary
// candidate and a splitmix64-derived second index challenges it: the
// challenger wins only with a strictly shorter advertised queue.  Under
// uniform (or not yet polled) load every challenge ties and the spread
// degrades to exact round-robin — no placement regression against the
// legacy policy — while a skewed federation drains toward the replicas
// with headroom.  Under rr (or with a single candidate) the cursor decides
// alone.
func (g *Gateway) spreadReplica(candidates []*replicaState) *replicaState {
	n := g.rrCursor.Add(1)
	i := int((n - 1) % uint64(len(candidates)))
	if len(candidates) == 1 || g.placement == placementRR {
		return candidates[i]
	}
	k := int(splitmix64(n) % uint64(len(candidates)))
	if k == i {
		k = (k + 1) % len(candidates)
	}
	if candidates[k].queueDepth() < candidates[i].queueDepth() {
		return candidates[k]
	}
	return candidates[i]
}

// saturated reports whether every candidate advertises a full queue.  A
// replica with no load report (loadOK false) or an unbounded queue never
// counts as saturated — admission control only refuses work when it has
// positive evidence that nobody can take it.
func saturated(candidates []*replicaState) bool {
	for _, rs := range candidates {
		report, ok := rs.loadReport()
		if !ok || report.QueueCap <= 0 || report.QueueDepth < report.QueueCap {
			return false
		}
	}
	return len(candidates) > 0
}

// placeSpread picks a submission target, refusing admission when the whole
// candidate set is saturated.
func (g *Gateway) placeSpread(candidates []*replicaState) (*replicaState, error) {
	if saturated(candidates) {
		metGwAdmissionRejects.Inc()
		return nil, core.ErrUnavailable(time.Second, "all replicas saturated: every candidate queue is full")
	}
	return g.spreadReplica(candidates), nil
}

// routeSubmit places one job submission.  For deterministic services it
// computes the memo key of the submission and consults the shared memo index
// first (authoritative: fed by every replica's delta feed), then the
// gateway-local hint table; either pointing at a still-healthy candidate
// wins, because that replica's memo cache can answer without recomputing.
// Otherwise the submission falls through to load-aware placement, which may
// refuse admission (non-nil err) when all candidates are saturated.  The
// returned key is non-empty when the dispatch should be recorded as a hint
// after the replica accepts it.
func (g *Gateway) routeSubmit(service string, inputs core.Values) (rs *replicaState, key string, hinted bool, err error) {
	candidates := g.serviceReplicas(service)
	if len(candidates) == 0 {
		return nil, "", false, nil
	}
	desc, _ := candidates[0].describe(service)
	if desc.Deterministic {
		// A nil FileDigester hashes file references by literal string.  That
		// is weaker than the container's content digest (two names for the
		// same bytes miss), but routing only needs gateway-local
		// determinism: a miss degrades to placement, never to a wrong
		// answer — the replica's own memo gate re-derives the real key.
		if k, err := core.CanonicalHash(desc.Name, desc.Version, inputs, nil); err == nil {
			key = k
			if name, ok := g.memo.lookup(key); ok {
				for _, c := range candidates {
					if c.name == name {
						metGwIndexHits.Inc()
						return c, key, true, nil
					}
				}
			}
			if name, ok := g.hints.get(key); ok {
				for _, c := range candidates {
					if c.name == name {
						metGwHintHits.Inc()
						return c, key, true, nil
					}
				}
				metGwHintStale.Inc()
			}
		}
	}
	rs, err = g.placeSpread(candidates)
	if err != nil {
		return nil, key, false, err
	}
	return rs, key, false, nil
}

// hintTable is the bounded digest→replica map behind memo-cache sharing.
// It uses two generations: inserts go to the young map, lookups check both,
// and when the young map fills the old generation is dropped wholesale —
// O(1) amortized eviction with no per-entry bookkeeping, at the cost of
// evicting cohorts instead of strict LRU order.  Hints are advisory, so
// losing a cohort only costs a load-aware dispatch.
type hintTable struct {
	max int

	mu    sync.Mutex
	young map[string]string
	old   map[string]string
}

func newHintTable(max int) *hintTable {
	return &hintTable{
		max:   max,
		young: make(map[string]string),
	}
}

func (t *hintTable) get(key string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.young[key]; ok {
		return v, true
	}
	if v, ok := t.old[key]; ok {
		// Promote so a hot hint survives the next generation flip.
		t.young[key] = v
		return v, true
	}
	return "", false
}

func (t *hintTable) put(key, replica string) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.young) >= t.max/2 {
		t.old = t.young
		t.young = make(map[string]string)
	}
	t.young[key] = replica
}

// forget drops every hint pointing at a replica (used when one is replaced
// rather than restarted, so stale hints do not pin traffic to a cold cache).
func (t *hintTable) forget(replica string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range t.young {
		if v == replica {
			delete(t.young, k)
		}
	}
	for k, v := range t.old {
		if v == replica {
			delete(t.old, k)
		}
	}
}
