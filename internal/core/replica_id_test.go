package core

import "testing"

func TestTagAndSplitReplicaID(t *testing.T) {
	id := NewID()
	tagged := TagID("r03", id)
	if tagged != "r03-"+id {
		t.Fatalf("TagID = %q, want r03-%s", tagged, id)
	}
	replica, ok := SplitReplicaID(tagged)
	if !ok || replica != "r03" {
		t.Fatalf("SplitReplicaID(%q) = %q,%v, want r03,true", tagged, replica, ok)
	}
	// An empty replica name leaves the ID in its bare pre-federation form.
	if got := TagID("", id); got != id {
		t.Fatalf("TagID(\"\") = %q, want %q", got, id)
	}
	if _, ok := SplitReplicaID(id); ok {
		t.Fatalf("SplitReplicaID(%q) matched a bare ID", id)
	}
}

func TestSplitReplicaIDRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"-abc",                      // empty prefix
		"r03-",                      // empty remainder
		"R03-abc",                   // uppercase prefix
		"r_3-abc",                   // invalid character
		"aaaaaaaaaaaaaaaaa-abc",     // 17-char prefix
		"no dash at all 0123456789", // spaces, no dash
	} {
		if rep, ok := SplitReplicaID(bad); ok {
			t.Errorf("SplitReplicaID(%q) = %q,true, want false", bad, rep)
		}
	}
	// Boundary: a 16-character prefix is the longest accepted.
	if rep, ok := SplitReplicaID("aaaaaaaaaaaaaaaa-x"); !ok || rep != "aaaaaaaaaaaaaaaa" {
		t.Errorf("16-char prefix rejected: %q %v", rep, ok)
	}
}

func TestValidReplicaName(t *testing.T) {
	for name, want := range map[string]bool{
		"r03": true, "a": true, "replica12": true,
		"": false, "R03": false, "r-3": false, "r.3": false,
		"aaaaaaaaaaaaaaaaa": false,
	} {
		if got := ValidReplicaName(name); got != want {
			t.Errorf("ValidReplicaName(%q) = %v, want %v", name, got, want)
		}
	}
}
