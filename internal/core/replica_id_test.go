package core

import "testing"

func TestTagAndSplitReplicaID(t *testing.T) {
	id := NewID()
	tagged := TagID("r03", id)
	if tagged != "r03-"+id {
		t.Fatalf("TagID = %q, want r03-%s", tagged, id)
	}
	replica, ok := SplitReplicaID(tagged)
	if !ok || replica != "r03" {
		t.Fatalf("SplitReplicaID(%q) = %q,%v, want r03,true", tagged, replica, ok)
	}
	// An empty replica name leaves the ID in its bare pre-federation form.
	if got := TagID("", id); got != id {
		t.Fatalf("TagID(\"\") = %q, want %q", got, id)
	}
	if _, ok := SplitReplicaID(id); ok {
		t.Fatalf("SplitReplicaID(%q) matched a bare ID", id)
	}
}

func TestSplitReplicaIDRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"-abc",                      // empty prefix
		"r03-",                      // empty remainder
		"R03-abc",                   // uppercase prefix
		"r_3-abc",                   // invalid character
		"aaaaaaaaaaaaaaaaa-abc",     // 17-char prefix
		"no dash at all 0123456789", // spaces, no dash
	} {
		if rep, ok := SplitReplicaID(bad); ok {
			t.Errorf("SplitReplicaID(%q) = %q,true, want false", bad, rep)
		}
	}
	// Boundary: a 16-character prefix is the longest accepted.
	if rep, ok := SplitReplicaID("aaaaaaaaaaaaaaaa-x"); !ok || rep != "aaaaaaaaaaaaaaaa" {
		t.Errorf("16-char prefix rejected: %q %v", rep, ok)
	}
}

// TestSplitReplicaIDNestedAndOpaque pins the first-dash-wins contract the
// federation relies on: a gateway-of-gateways tag (r01-r02-<hex>) splits at
// the OUTER prefix with the remainder kept opaque, and a remainder that is
// not hex still splits — SplitReplicaID validates the prefix, never the
// payload.  Cross-replica routing depends on both properties.
func TestSplitReplicaIDNestedAndOpaque(t *testing.T) {
	id := NewID()
	nested := TagID("r01", TagID("r02", id))
	rep, ok := SplitReplicaID(nested)
	if !ok || rep != "r01" {
		t.Fatalf("SplitReplicaID(%q) = %q,%v, want r01,true", nested, rep, ok)
	}
	// Re-splitting the remainder peels the inner layer.
	inner := nested[len("r01-"):]
	if rep, ok := SplitReplicaID(inner); !ok || rep != "r02" {
		t.Fatalf("SplitReplicaID(%q) = %q,%v, want r02,true", inner, rep, ok)
	}
	// Malformed (non-hex) remainders still split: the payload is opaque.
	for _, id := range []string{"r03-ZZZZ", "r03-not hex", "r03--"} {
		if rep, ok := SplitReplicaID(id); !ok || rep != "r03" {
			t.Errorf("SplitReplicaID(%q) = %q,%v, want r03,true", id, rep, ok)
		}
	}
	// TagID never re-validates: tagging an already-tagged ID nests.
	if got := TagID("r01", "r02-abc"); got != "r01-r02-abc" {
		t.Errorf("TagID nesting = %q, want r01-r02-abc", got)
	}
	// TagID with an empty ID still produces a split-rejected value
	// (empty remainder), so malformed mints cannot masquerade as remote.
	if _, ok := SplitReplicaID(TagID("r01", "")); ok {
		t.Error("SplitReplicaID accepted a tag with empty remainder")
	}
}

func TestValidReplicaName(t *testing.T) {
	for name, want := range map[string]bool{
		"r03": true, "a": true, "replica12": true,
		"": false, "R03": false, "r-3": false, "r.3": false,
		"aaaaaaaaaaaaaaaaa": false,
	} {
		if got := ValidReplicaName(name); got != want {
			t.Errorf("ValidReplicaName(%q) = %v, want %v", name, got, want)
		}
	}
}
