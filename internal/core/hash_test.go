package core

import (
	"errors"
	"fmt"
	"testing"
)

func TestCanonicalHashOrderInsensitive(t *testing.T) {
	a := Values{"x": 1.0, "y": "s", "nested": map[string]any{"p": true, "q": []any{1.0, 2.0}}}
	b := Values{"nested": map[string]any{"q": []any{1.0, 2.0}, "p": true}, "y": "s", "x": 1.0}
	ha, err := CanonicalHash("svc", "1", a, nil)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := CanonicalHash("svc", "1", b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("map order changed the hash: %s vs %s", ha, hb)
	}
}

func TestCanonicalHashDistinguishes(t *testing.T) {
	base := Values{"x": 1.0}
	h0, _ := CanonicalHash("svc", "1", base, nil)
	for name, alt := range map[string]struct {
		service, version string
		inputs           Values
	}{
		"service":      {"other", "1", base},
		"version":      {"svc", "2", base},
		"value":        {"svc", "1", Values{"x": 2.0}},
		"key":          {"svc", "1", Values{"y": 1.0}},
		"type":         {"svc", "1", Values{"x": "1"}},
		"extra":        {"svc", "1", Values{"x": 1.0, "y": nil}},
		"nested-shift": {"svc", "1", Values{"x": []any{[]any{1.0}}}},
	} {
		h, err := CanonicalHash(alt.service, alt.version, alt.inputs, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("%s: hash collision with base", name)
		}
	}
}

func TestCanonicalHashNormalisesGoTypes(t *testing.T) {
	// An in-process submit may carry int or typed slices; a REST submit of
	// the same request decodes to float64 and []any.  Both must hash alike.
	inProc := Values{"n": 3, "v": []float64{1, 2}}
	decoded := Values{"n": 3.0, "v": []any{1.0, 2.0}}
	h1, err := CanonicalHash("svc", "1", inProc, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := CanonicalHash("svc", "1", decoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("typed and decoded forms hash differently: %s vs %s", h1, h2)
	}
}

func TestCanonicalHashFileDigest(t *testing.T) {
	digests := map[string]string{"idA": "deadbeef", "idB": "deadbeef", "idC": "cafe"}
	digester := func(ref string) (string, error) {
		d, ok := digests[ref]
		if !ok {
			return "", errors.New("unknown file")
		}
		return d, nil
	}
	hA, err := CanonicalHash("svc", "1", Values{"f": FileRef("idA")}, digester)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := CanonicalHash("svc", "1", Values{"f": FileRef("idB")}, digester)
	if err != nil {
		t.Fatal(err)
	}
	if hA != hB {
		t.Fatal("same content behind different file IDs must hash identically")
	}
	hC, err := CanonicalHash("svc", "1", Values{"f": FileRef("idC")}, digester)
	if err != nil {
		t.Fatal(err)
	}
	if hC == hA {
		t.Fatal("different content must hash differently")
	}
	// A file hashed by content must not collide with the literal string of
	// its reference.
	hLit, err := CanonicalHash("svc", "1", Values{"f": FileRef("idA")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hLit == hA {
		t.Fatal("content digest and literal ref forms must differ")
	}
	// Unresolvable references propagate the error so callers skip caching.
	if _, err := CanonicalHash("svc", "1", Values{"f": FileRef("missing")}, digester); err == nil {
		t.Fatal("expected error for unresolvable file reference")
	}
}

func TestCanonicalHashUnmarshalable(t *testing.T) {
	if _, err := CanonicalHash("svc", "1", Values{"bad": func() {}}, nil); err == nil {
		t.Fatal("expected error for unmarshalable input value")
	}
}

func BenchmarkCanonicalHash(b *testing.B) {
	inputs := Values{}
	for i := 0; i < 16; i++ {
		inputs[fmt.Sprintf("param%02d", i)] = float64(i) * 1.5
	}
	inputs["nested"] = map[string]any{"list": []any{1.0, "two", true, nil}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CanonicalHash("svc", "1.0", inputs, nil); err != nil {
			b.Fatal(err)
		}
	}
}
