package core

import (
	"sort"
	"time"
)

// SweepSpec is the body of POST /services/{name}/sweeps: one request that
// expands into many jobs of the same service.  The paper's flagship
// applications are campaigns of near-identical requests — thousands of
// scattering-curve simulations, pools of solver runs — and a sweep submits
// a whole campaign in one HTTP round trip.
//
// Shared inputs go in Template; the varying inputs are given either as Axes
// (per-parameter value lists whose cross product is enumerated) or as an
// explicit Points list.  Each resulting point is merged over the template,
// with the point's values winning on conflicting names.
type SweepSpec struct {
	// Template holds the input values shared by every point of the sweep.
	Template Values `json:"template,omitempty"`
	// Axes maps input parameter names to the values each one ranges over;
	// the sweep enumerates their full cross product in row-major order of
	// the sorted axis names.  Mutually exclusive with Points.
	Axes map[string][]any `json:"axes,omitempty"`
	// Points lists explicit parameter combinations.  Mutually exclusive
	// with Axes.
	Points []Values `json:"points,omitempty"`
	// Destruction is the sweep's retention TTL: once every child is
	// terminal, the sweep and its children are purged this long after the
	// last child lands.  Zero inherits the container's default job TTL.
	Destruction Duration `json:"destruction,omitempty"`
}

// Width returns the number of jobs the spec expands to: the product of the
// axis lengths, or the number of explicit points.
func (s *SweepSpec) Width() int {
	if len(s.Points) > 0 {
		return len(s.Points)
	}
	if len(s.Axes) == 0 {
		return 0
	}
	w := 1
	for _, vals := range s.Axes {
		w *= len(vals)
	}
	return w
}

// Expand enumerates the per-point input overrides of the sweep (the values
// that vary; the template is not merged in, so callers can stage and hash
// the shared part once).  The expansion is deterministic: explicit points in
// list order, axes in row-major order of the sorted axis names.  maxWidth
// bounds the expansion; zero or negative means no bound.
func (s *SweepSpec) Expand(maxWidth int) ([]Values, error) {
	if len(s.Axes) > 0 && len(s.Points) > 0 {
		return nil, ErrBadRequest("sweep: specify axes or points, not both")
	}
	if len(s.Points) > 0 {
		if maxWidth > 0 && len(s.Points) > maxWidth {
			return nil, ErrBadRequest("sweep: %d points exceed the maximum sweep width %d", len(s.Points), maxWidth)
		}
		out := make([]Values, len(s.Points))
		for i, p := range s.Points {
			if p == nil {
				p = Values{}
			}
			out[i] = p
		}
		return out, nil
	}
	if len(s.Axes) == 0 {
		return nil, ErrBadRequest("sweep: empty specification: provide axes or points")
	}
	names := make([]string, 0, len(s.Axes))
	width := 1
	for name, vals := range s.Axes {
		if len(vals) == 0 {
			return nil, ErrBadRequest("sweep: axis %q has no values", name)
		}
		names = append(names, name)
		if maxWidth > 0 && width > maxWidth/len(vals) {
			return nil, ErrBadRequest("sweep: axes exceed the maximum sweep width %d", maxWidth)
		}
		width *= len(vals)
	}
	sort.Strings(names)
	out := make([]Values, width)
	for i := range out {
		point := make(Values, len(names))
		idx := i
		// Row-major: the last (sorted) axis varies fastest.
		for k := len(names) - 1; k >= 0; k-- {
			vals := s.Axes[names[k]]
			point[names[k]] = vals[idx%len(vals)]
			idx /= len(vals)
		}
		out[i] = point
	}
	return out, nil
}

// MergePoint returns the full input map of one point: the template with the
// point's overrides applied.  Neither argument is mutated.
func (s *SweepSpec) MergePoint(override Values) Values {
	merged := make(Values, len(s.Template)+len(override))
	for k, v := range s.Template {
		merged[k] = v
	}
	for k, v := range override {
		merged[k] = v
	}
	return merged
}

// SweepCounts is the aggregate child-state histogram of a sweep.  Its size
// is fixed, so sweep status stays O(1) with respect to the sweep width.
type SweepCounts struct {
	Waiting   int `json:"waiting"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Error     int `json:"error"`
	Cancelled int `json:"cancelled"`
}

// Terminal returns how many children have reached a terminal state.
func (c SweepCounts) Terminal() int { return c.Done + c.Error + c.Cancelled }

// Sweep is the server-side record of one parameter sweep, exposed through
// the sweep resource of the REST API.  It aggregates its children: the
// representation carries counts, not the child list, so polling it at width
// 1000+ costs the same as polling a single job.
type Sweep struct {
	// ID identifies the sweep within its container.
	ID string `json:"id"`
	// Service is the name of the service the children belong to.
	Service string `json:"service"`
	// State summarises the sweep: RUNNING while any child is non-terminal,
	// then ERROR if any child failed, CANCELLED if any was cancelled (and
	// none failed), DONE otherwise.
	State JobState `json:"state"`
	// Width is the total number of child jobs.
	Width int `json:"width"`
	// Counts breaks the children down by state.
	Counts SweepCounts `json:"counts"`
	// FirstError carries the error message of the first child that failed,
	// so a failing campaign surfaces its cause without a child-list scan.
	FirstError string `json:"firstError,omitempty"`
	// Created and Finished delimit the sweep's lifetime; Finished is set
	// when the last child reaches a terminal state.
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitempty"`
	// Destruction is the instant after which the reaper may purge the
	// terminal sweep and its children (zero = kept until DELETE).
	Destruction time.Time `json:"destruction,omitempty"`
	// Owner is the authenticated identity that submitted the sweep.
	Owner string `json:"owner,omitempty"`
	// TraceID is the request identifier of the submitting HTTP request;
	// every child job carries the same ID.
	TraceID string `json:"traceId,omitempty"`
	// URI is the absolute resource identifier of the sweep; JobsURI lists
	// its children (state-filterable and paginated).
	URI     string `json:"uri,omitempty"`
	JobsURI string `json:"jobsUri,omitempty"`
}

// AggregateState derives the summary state of a sweep with the given width
// from its child-state counts: RUNNING while any child is non-terminal,
// then ERROR > CANCELLED > DONE by severity.
func (c SweepCounts) AggregateState(width int) JobState {
	if c.Terminal() < width {
		return StateRunning
	}
	switch {
	case c.Error > 0:
		return StateError
	case c.Cancelled > 0:
		return StateCancelled
	default:
		return StateDone
	}
}
