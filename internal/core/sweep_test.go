package core

import (
	"fmt"
	"testing"
)

func TestSweepExpandAxes(t *testing.T) {
	spec := SweepSpec{
		Template: Values{"fixed": "x"},
		Axes: map[string][]any{
			"b": {1.0, 2.0, 3.0},
			"a": {"p", "q"},
		},
	}
	if w := spec.Width(); w != 6 {
		t.Fatalf("Width = %d, want 6", w)
	}
	points, err := spec.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("expanded %d points, want 6", len(points))
	}
	// Row-major over sorted axis names: "a" outer, "b" inner.
	want := []Values{
		{"a": "p", "b": 1.0}, {"a": "p", "b": 2.0}, {"a": "p", "b": 3.0},
		{"a": "q", "b": 1.0}, {"a": "q", "b": 2.0}, {"a": "q", "b": 3.0},
	}
	for i, p := range points {
		if fmt.Sprint(p["a"]) != fmt.Sprint(want[i]["a"]) || fmt.Sprint(p["b"]) != fmt.Sprint(want[i]["b"]) {
			t.Errorf("point %d = %v, want %v", i, p, want[i])
		}
		merged := spec.MergePoint(p)
		if merged["fixed"] != "x" {
			t.Errorf("point %d lost template value: %v", i, merged)
		}
	}
}

func TestSweepExpandPoints(t *testing.T) {
	spec := SweepSpec{Points: []Values{{"n": 1.0}, nil, {"n": 3.0}}}
	points, err := spec.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 || points[1] == nil {
		t.Fatalf("points = %v", points)
	}
}

func TestSweepExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		spec SweepSpec
		max  int
	}{
		{"empty", SweepSpec{}, 0},
		{"both", SweepSpec{Axes: map[string][]any{"a": {1.0}}, Points: []Values{{}}}, 0},
		{"empty axis", SweepSpec{Axes: map[string][]any{"a": {}}}, 0},
		{"axes over cap", SweepSpec{Axes: map[string][]any{"a": {1.0, 2.0}, "b": {1.0, 2.0}}}, 3},
		{"points over cap", SweepSpec{Points: []Values{{}, {}, {}}}, 2},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Expand(tc.max); err == nil {
			t.Errorf("%s: Expand succeeded, want error", tc.name)
		}
	}
}

// TestSweepExpandWidthOverflow exercises the overflow guard: gigantic axis
// products must be rejected, not wrapped.
func TestSweepExpandWidthOverflow(t *testing.T) {
	big := make([]any, 100000)
	for i := range big {
		big[i] = float64(i)
	}
	spec := SweepSpec{Axes: map[string][]any{"a": big, "b": big, "c": big}}
	if _, err := spec.Expand(1 << 20); err == nil {
		t.Fatal("Expand of 10^15 points succeeded, want width error")
	}
}

// TestInputHasherMatchesCanonicalHash is the correctness contract of the
// sweep fast path: the prefix-reusing hasher must produce byte-identical
// keys to the ordinary per-request CanonicalHash, including when overrides
// shadow template values, so sweep children and single submissions share
// one memo table.
func TestInputHasherMatchesCanonicalHash(t *testing.T) {
	digester := func(ref string) (string, error) { return "digest-of-" + ref, nil }
	template := Values{
		"alpha": 1.5,
		"m":     map[string]any{"k": []any{true, nil, "s"}},
		"file":  FileRef("abc123"),
		"zeta":  "shared",
	}
	ih, err := NewInputHasher("svc", "2.0", template, digester)
	if err != nil {
		t.Fatal(err)
	}
	overrides := []Values{
		{},
		{"beta": 2.0},
		{"alpha": 9.0},                      // shadows a template key
		{"aa": 1.0, "nn": 2.0, "zz": 3.0},   // interleaves around template keys
		{"zeta": "own", "zzz": "tail"},      // shadow plus trailing key
		{"file2": FileRef("def456")},        // per-point file input
		{"a": map[string]any{"x": []any{}}}, // structured override
	}
	seen := make(map[string]string)
	for _, ov := range overrides {
		merged := (&SweepSpec{Template: template}).MergePoint(ov)
		want, err := CanonicalHash("svc", "2.0", merged, digester)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ih.HashPoint(ov, digester)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("HashPoint(%v) = %s, want CanonicalHash %s", ov, got, want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("hash collision between overrides %v and %s", ov, prev)
		}
		seen[got] = fmt.Sprint(ov)
	}
	// An override that repeats template values verbatim merges to the same
	// inputs as no override at all, so the keys must coincide — that is the
	// overlap property sweep memoization relies on.
	empty, err := ih.HashPoint(nil, digester)
	if err != nil {
		t.Fatal(err)
	}
	same, err := ih.HashPoint(Values{"alpha": 1.5, "zeta": "shared"}, digester)
	if err != nil {
		t.Fatal(err)
	}
	if empty != same {
		t.Errorf("equal-valued override hashed differently: %s vs %s", empty, same)
	}
}

func TestInputHasherFileDigestResolvedOnce(t *testing.T) {
	calls := 0
	digester := func(ref string) (string, error) { calls++; return "d-" + ref, nil }
	ih, err := NewInputHasher("svc", "1", Values{"file": FileRef("abc")}, digester)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ih.HashPoint(Values{"n": float64(i)}, digester); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("template file digested %d times, want 1", calls)
	}
}

func TestSweepAggregateState(t *testing.T) {
	cases := []struct {
		counts SweepCounts
		width  int
		want   JobState
	}{
		{SweepCounts{Waiting: 2, Done: 1}, 3, StateRunning},
		{SweepCounts{Done: 3}, 3, StateDone},
		{SweepCounts{Done: 2, Error: 1}, 3, StateError},
		{SweepCounts{Done: 2, Cancelled: 1}, 3, StateCancelled},
		{SweepCounts{Error: 1, Cancelled: 2}, 3, StateError},
	}
	for i, tc := range cases {
		if got := tc.counts.AggregateState(tc.width); got != tc.want {
			t.Errorf("case %d: AggregateState = %s, want %s", i, got, tc.want)
		}
	}
}
