package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// FileDigester resolves a file-reference input (the payload after the
// "file:" prefix) to a stable digest of the file *content*.  The result
// reuse plane keys computations by what the inputs are, not how they are
// named: two uploads of the same bytes receive distinct file IDs, but both
// must hash to the same computation key.  A digester that cannot resolve a
// reference (a remote URI, a deleted file) returns an error, which makes
// CanonicalHash fail and the caller fall back to uncached execution — a
// conservative miss, never a wrong hit.
type FileDigester func(ref string) (string, error)

// CanonicalHash derives the content-addressed computation key of one
// request: sha256 over a canonical encoding of (service, version, inputs).
// The encoding is insensitive to JSON map ordering — object keys are sorted
// recursively — and file-reference values are replaced by the content
// digest produced by files, so renamed or re-uploaded identical files hash
// identically.  A nil digester hashes file references by their literal ref
// string (identity, not content), which is still deterministic for reused
// references but misses across re-uploads.
//
// Values must be JSON-marshalable (they arrived through the REST API or an
// in-process submit of the same shape); anything else is an error.
func CanonicalHash(service, version string, inputs Values, files FileDigester) (string, error) {
	h := sha256.New()
	writeHashHeader(h, service, version)
	if err := hashValue(h, map[string]any(inputs), files); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writeHashHeader writes the domain-separated identity prefix of a
// computation key, so ("a", "bc") and ("ab", "c") cannot collide.
func writeHashHeader(w io.Writer, service, version string) {
	writeString(w, service)
	w.Write([]byte{0})
	writeString(w, version)
	w.Write([]byte{0})
}

func writeString(h io.Writer, s string) {
	var lenBuf [8]byte
	n := len(s)
	for i := 0; i < 8; i++ {
		lenBuf[i] = byte(n >> (8 * i))
	}
	h.Write(lenBuf[:])
	h.Write([]byte(s))
}

// hashValue writes a canonical encoding of v into h.  The common JSON
// shapes (nil, bool, float64, string, []any, map[string]any) are encoded
// directly; any other Go value — an int from an in-process caller, a typed
// slice — is normalised through one json.Marshal/Unmarshal round trip so
// equivalent values hash equally regardless of their in-memory type.
func hashValue(h io.Writer, v any, files FileDigester) error {
	switch val := v.(type) {
	case nil:
		h.Write([]byte("z"))
	case bool:
		if val {
			h.Write([]byte("t"))
		} else {
			h.Write([]byte("f"))
		}
	case float64:
		h.Write([]byte("n"))
		writeString(h, strconv.FormatFloat(val, 'g', -1, 64))
	case string:
		if ref, isFile := FileRefID(val); isFile && files != nil {
			digest, err := files(ref)
			if err != nil {
				return fmt.Errorf("core: hash file input %q: %w", ref, err)
			}
			h.Write([]byte("F"))
			writeString(h, digest)
			return nil
		}
		h.Write([]byte("s"))
		writeString(h, val)
	case []any:
		h.Write([]byte("["))
		for _, item := range val {
			if err := hashValue(h, item, files); err != nil {
				return err
			}
		}
		h.Write([]byte("]"))
	case map[string]any:
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h.Write([]byte("{"))
		for _, k := range keys {
			writeString(h, k)
			if err := hashValue(h, val[k], files); err != nil {
				return err
			}
		}
		h.Write([]byte("}"))
	case Values:
		return hashValue(h, map[string]any(val), files)
	case json.Number:
		// Preserve the textual form only if it round-trips to the same
		// float64 a decoded request would carry.
		f, err := val.Float64()
		if err != nil {
			return fmt.Errorf("core: hash input: invalid number %q", string(val))
		}
		return hashValue(h, f, files)
	default:
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("core: hash input: %w", err)
		}
		var normalised any
		if err := json.Unmarshal(data, &normalised); err != nil {
			return fmt.Errorf("core: hash input: %w", err)
		}
		return hashValue(h, normalised, files)
	}
	return nil
}

// InputHasher derives computation keys for a family of requests sharing one
// template: the canonical encodings of the service identity and of every
// template value — including file-digest resolution — are computed once at
// construction and replayed per point, so hashing the k-th point of a sweep
// costs one sha256 pass over mostly precomputed bytes instead of re-encoding
// (and re-digesting) the shared inputs.  HashPoint(override) produces
// exactly CanonicalHash(service, version, merge(template, override), files),
// which is what lets sweep children share the memo table with ordinary
// single submissions.  An InputHasher is immutable after construction and
// safe for concurrent use.
type InputHasher struct {
	header   []byte
	keys     []string // sorted template keys
	segments map[string][]byte
}

// NewInputHasher precomputes the canonical encoding of (service, version)
// and of each template value.  File-reference template values are resolved
// through files exactly once, here.
func NewInputHasher(service, version string, template Values, files FileDigester) (*InputHasher, error) {
	ih := &InputHasher{segments: make(map[string][]byte, len(template))}
	var buf bytes.Buffer
	writeHashHeader(&buf, service, version)
	ih.header = append([]byte(nil), buf.Bytes()...)
	for _, k := range template.Names() {
		buf.Reset()
		writeString(&buf, k)
		if err := hashValue(&buf, template[k], files); err != nil {
			return nil, err
		}
		ih.segments[k] = append([]byte(nil), buf.Bytes()...)
		ih.keys = append(ih.keys, k)
	}
	return ih, nil
}

// HashPoint returns the computation key of the template merged with the
// given per-point overrides (overrides win on conflicting names).  Only the
// override values are encoded — and only their file references digested —
// at call time.
func (ih *InputHasher) HashPoint(override Values, files FileDigester) (string, error) {
	h := sha256.New()
	h.Write(ih.header)
	h.Write([]byte("{"))
	ti := 0
	for _, k := range override.Names() {
		for ti < len(ih.keys) && ih.keys[ti] < k {
			h.Write(ih.segments[ih.keys[ti]])
			ti++
		}
		if ti < len(ih.keys) && ih.keys[ti] == k {
			ti++ // template value shadowed by the override
		}
		writeString(h, k)
		if err := hashValue(h, override[k], files); err != nil {
			return "", err
		}
	}
	for ; ti < len(ih.keys); ti++ {
		h.Write(ih.segments[ih.keys[ti]])
	}
	h.Write([]byte("}"))
	return hex.EncodeToString(h.Sum(nil)), nil
}
