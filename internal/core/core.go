// Package core defines the shared model of the MathCloud platform: job
// states, parameter values, service descriptions, job records and file
// references.  Every other component — the service container, the workflow
// system, the catalogue, the clients — speaks in terms of these types.
package core

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"mathcloud/internal/jsonschema"
)

// JobState is the lifecycle state of a computational job, as exposed by the
// unified REST API.  The paper names WAITING, RUNNING and DONE explicitly;
// ERROR and CANCELLED complete the state machine.
type JobState string

// Job lifecycle states.
const (
	// StateWaiting means the request has been accepted and queued.
	StateWaiting JobState = "WAITING"
	// StateRunning means a handler thread is executing the job.
	StateRunning JobState = "RUNNING"
	// StateDone means the job finished successfully and outputs are set.
	StateDone JobState = "DONE"
	// StateError means the job failed; the Error field explains why.
	StateError JobState = "ERROR"
	// StateCancelled means the client cancelled the job via DELETE.
	StateCancelled JobState = "CANCELLED"
)

// Terminal reports whether the state is final: no further transitions.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateError, StateCancelled:
		return true
	}
	return false
}

// Valid reports whether s is one of the defined job states.
func (s JobState) Valid() bool {
	switch s {
	case StateWaiting, StateRunning, StateDone, StateError, StateCancelled:
		return true
	}
	return false
}

// CanTransition reports whether a job may move from s to next.  The legal
// machine is WAITING→{RUNNING,CANCELLED,ERROR}, RUNNING→{DONE,ERROR,CANCELLED};
// terminal states admit no successors.
func (s JobState) CanTransition(next JobState) bool {
	if !s.Valid() || !next.Valid() || s.Terminal() {
		return false
	}
	switch s {
	case StateWaiting:
		return next == StateRunning || next == StateCancelled || next == StateError
	case StateRunning:
		return next == StateDone || next == StateError || next == StateCancelled
	}
	return false
}

// Values holds named parameter values of a request or a result, using
// encoding/json's generic representation.
type Values map[string]any

// Clone returns a shallow copy of the value map (values themselves are
// treated as immutable once attached to a job).
func (v Values) Clone() Values {
	if v == nil {
		return nil
	}
	out := make(Values, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Names returns the sorted parameter names, for deterministic iteration.
func (v Values) Names() []string {
	names := make([]string, 0, len(v))
	for k := range v {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Duration is a time.Duration that marshals to and from the Go duration
// string syntax ("30s", "2m"), so service configurations and descriptions
// stay human-editable JSON.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", time.Duration(d))), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting a duration string or
// a plain number of nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	s := strings.Trim(string(data), `"`)
	if s == "" || s == "null" {
		*d = 0
		return nil
	}
	parsed, err := time.ParseDuration(s)
	if err != nil {
		var ns int64
		if _, serr := fmt.Sscan(s, &ns); serr != nil {
			return fmt.Errorf("core: invalid duration %q: %v", s, err)
		}
		parsed = time.Duration(ns)
	}
	*d = Duration(parsed)
	return nil
}

// Std returns the value as a standard time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Param describes one input or output parameter of a computational web
// service: its name, human annotations and JSON Schema.
type Param struct {
	// Name identifies the parameter in request and result value maps.
	Name string `json:"name"`
	// Title is an optional human-readable label.
	Title string `json:"title,omitempty"`
	// Schema constrains values of the parameter; nil accepts anything.
	Schema *jsonschema.Schema `json:"schema,omitempty"`
	// Optional marks inputs that may be omitted from a request.
	Optional bool `json:"optional,omitempty"`
}

// ServiceDescription is the public description of a computational web
// service, returned by GET on the service resource.  It supports the
// introspection required by the workflow editor and the catalogue.
type ServiceDescription struct {
	// Name is the short identifier of the service, unique per container.
	Name string `json:"name"`
	// Title is a human-readable display name.
	Title string `json:"title,omitempty"`
	// Description explains what the service computes.
	Description string `json:"description,omitempty"`
	// Version is a free-form version string.
	Version string `json:"version,omitempty"`
	// Inputs and Outputs describe the service parameters.
	Inputs  []Param `json:"inputs"`
	Outputs []Param `json:"outputs"`
	// Tags are keywords used by the service catalogue.
	Tags []string `json:"tags,omitempty"`
	// Deadline bounds the execution (RUNNING) time of jobs of this
	// service; a job that overruns it terminates in the ERROR state.  Zero
	// means the container's default job deadline applies.
	Deadline Duration `json:"deadline,omitempty"`
	// Deterministic declares that the service is a pure function of its
	// inputs: identical inputs always produce equivalent outputs.  The
	// container may then serve repeated requests from its computation
	// cache and coalesce concurrent identical submissions into a single
	// adapter execution.  Services with side effects, randomness or
	// time-dependent results must leave this unset.
	Deterministic bool `json:"deterministic,omitempty"`
	// Batch declares that the service's adapter supports micro-batched
	// invocation (adapter.BatchInterface): the container's worker pool may
	// drain several queued jobs of this service into one adapter call,
	// amortising per-invocation overhead — one external process, one
	// solver warm-up — across the batch.  Failures isolate per job.
	Batch bool `json:"batch,omitempty"`
	// URI is the absolute resource identifier of the service; filled by
	// the container when the description is served.
	URI string `json:"uri,omitempty"`
}

// Input returns the named input parameter.
func (d *ServiceDescription) Input(name string) (Param, bool) {
	return findParam(d.Inputs, name)
}

// Output returns the named output parameter.
func (d *ServiceDescription) Output(name string) (Param, bool) {
	return findParam(d.Outputs, name)
}

func findParam(params []Param, name string) (Param, bool) {
	for _, p := range params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Validate checks the description itself for well-formedness: a non-empty
// name, uniquely named parameters and declared schemas.
func (d *ServiceDescription) Validate() error {
	if strings.TrimSpace(d.Name) == "" {
		return fmt.Errorf("core: service description: empty name")
	}
	if err := checkParams("input", d.Inputs); err != nil {
		return fmt.Errorf("core: service %q: %w", d.Name, err)
	}
	if err := checkParams("output", d.Outputs); err != nil {
		return fmt.Errorf("core: service %q: %w", d.Name, err)
	}
	return nil
}

func checkParams(kind string, params []Param) error {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if strings.TrimSpace(p.Name) == "" {
			return fmt.Errorf("%s parameter with empty name", kind)
		}
		if seen[p.Name] {
			return fmt.Errorf("duplicate %s parameter %q", kind, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// ValidateInputs checks a request's values against the declared input
// parameters: all mandatory inputs present, no unknown names, every value
// conforming to its schema.  File references are passed through untouched;
// they are resolved by the container before the adapter runs.
func (d *ServiceDescription) ValidateInputs(v Values) error {
	for _, p := range d.Inputs {
		val, ok := v[p.Name]
		if !ok {
			if p.Optional || (p.Schema != nil && p.Schema.HasDefault) {
				continue
			}
			return fmt.Errorf("core: service %q: missing required input %q", d.Name, p.Name)
		}
		if _, isFile := FileRefID(val); isFile {
			continue
		}
		if p.Schema != nil {
			if err := p.Schema.Validate(val); err != nil {
				return fmt.Errorf("core: service %q: input %q: %w", d.Name, p.Name, err)
			}
		}
	}
	for name := range v {
		if _, ok := d.Input(name); !ok {
			return fmt.Errorf("core: service %q: unknown input %q", d.Name, name)
		}
	}
	return nil
}

// ApplyDefaults returns a copy of v with schema defaults filled in for
// absent optional inputs.
func (d *ServiceDescription) ApplyDefaults(v Values) Values {
	out := v.Clone()
	if out == nil {
		out = Values{}
	}
	for _, p := range d.Inputs {
		if _, ok := out[p.Name]; ok {
			continue
		}
		if p.Schema != nil && p.Schema.HasDefault {
			out[p.Name] = p.Schema.Default
		}
	}
	return out
}

// ValidateOutputs checks a completed job's result values against the
// declared output parameters.
func (d *ServiceDescription) ValidateOutputs(v Values) error {
	for _, p := range d.Outputs {
		val, ok := v[p.Name]
		if !ok {
			if p.Optional {
				continue
			}
			return fmt.Errorf("core: service %q: missing output %q", d.Name, p.Name)
		}
		if _, isFile := FileRefID(val); isFile {
			continue
		}
		if p.Schema != nil {
			if err := p.Schema.Validate(val); err != nil {
				return fmt.Errorf("core: service %q: output %q: %w", d.Name, p.Name, err)
			}
		}
	}
	return nil
}

// Job is the server-side record of one request, exposed through the job
// resource of the REST API.
type Job struct {
	// ID identifies the job within its container.
	ID string `json:"id"`
	// Service is the name of the service the job belongs to.
	Service string `json:"service"`
	// State is the current lifecycle state.
	State JobState `json:"state"`
	// Inputs holds the request parameters; Outputs the results once DONE.
	Inputs  Values `json:"inputs,omitempty"`
	Outputs Values `json:"outputs,omitempty"`
	// Error describes the failure when State is ERROR.
	Error string `json:"error,omitempty"`
	// Created, Started and Finished are the lifecycle timeline of the job:
	// when the request was submitted (accepted into the queue), when a
	// handler began executing it, and when it reached a terminal state.
	// Submitted mirrors Created under the timeline's natural wire name;
	// "created" is kept for compatibility with pre-timeline clients.
	Created   time.Time `json:"created"`
	Submitted time.Time `json:"submitted,omitempty"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Destruction is the UWS-style destruction time of a terminal job: the
	// instant after which the container's reaper may purge the record and
	// its subordinate file resources.  Zero means the job is kept until an
	// explicit DELETE.  Set from the container's default TTL or from the
	// request's own destruction field when it reaches a terminal state.
	Destruction time.Time `json:"destruction,omitempty"`
	// QueueWait and RunTime are the derived timeline durations: how long
	// the job sat in the queue before a handler picked it up, and how long
	// it executed.  They are value fields, so job snapshots carry them at
	// no extra allocation cost.
	QueueWait Duration `json:"queueWait,omitempty"`
	RunTime   Duration `json:"runTime,omitempty"`
	// TraceID is the request identifier propagated from the ingress HTTP
	// request that created the job (X-Request-ID); outbound calls the job
	// makes — workflow block invocations, file staging — carry the same ID,
	// so a workflow's fan-out can be correlated across services.
	TraceID string `json:"traceId,omitempty"`
	// Blocks carries per-block states for composite (workflow) services,
	// so the editor can paint block status during execution.
	Blocks map[string]JobState `json:"blocks,omitempty"`
	// Owner is the authenticated identity that submitted the job, if the
	// container runs with security enabled.
	Owner string `json:"owner,omitempty"`
	// Log collects human-readable progress messages reported by the
	// adapter while the job runs.
	Log []string `json:"log,omitempty"`
	// URI is the absolute resource identifier of the job.
	URI string `json:"uri,omitempty"`
}

// Clone returns a deep-enough copy of the job record for safe concurrent
// publication (value maps are cloned; values themselves are immutable).
func (j *Job) Clone() *Job {
	out := *j
	out.Inputs = j.Inputs.Clone()
	out.Outputs = j.Outputs.Clone()
	if j.Blocks != nil {
		out.Blocks = make(map[string]JobState, len(j.Blocks))
		for k, v := range j.Blocks {
			out.Blocks[k] = v
		}
	}
	if j.Log != nil {
		out.Log = append([]string(nil), j.Log...)
	}
	return &out
}

// ActForHeader is the HTTP header carrying the delegated user identity on
// proxied requests: a trusted service (typically the workflow management
// service) sets it to the identity of the user on whose behalf it invokes
// another service.
const ActForHeader = "X-MathCloud-Act-For"

// Principal is an authenticated client identity.  Identities are strings
// such as "cn:Alice" (X.509 certificate distinguished names) or
// "openid:https://id.example/alice" (federated web identities).
type Principal struct {
	// ID is the directly authenticated identity.
	ID string
	// OnBehalfOf, when non-empty, names the user a trusted service is
	// acting for (the proxying mechanism of the security section).
	OnBehalfOf string
}

// Effective returns the identity that ownership and authorization
// decisions apply to: the delegated user if present, the caller otherwise.
func (p Principal) Effective() string {
	if p.OnBehalfOf != "" {
		return p.OnBehalfOf
	}
	return p.ID
}

// FileRefPrefix marks a string parameter value as a reference to a file
// resource rather than an inline value.  The remainder of the string is the
// file URI (absolute) or file ID (container-local).
const FileRefPrefix = "file:"

// FileRef builds a file reference value from a file identifier or URI.
func FileRef(idOrURI string) string { return FileRefPrefix + idOrURI }

// FileRefID extracts the file identifier from a parameter value if the
// value is a file reference.
func FileRefID(v any) (string, bool) {
	s, ok := v.(string)
	if !ok || !strings.HasPrefix(s, FileRefPrefix) {
		return "", false
	}
	return strings.TrimPrefix(s, FileRefPrefix), true
}

// NewID returns a fresh random identifier (32 hex digits) used for jobs and
// file resources.
func NewID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failure is unrecoverable for the process.
		panic(fmt.Sprintf("core: cannot generate id: %v", err))
	}
	return hex.EncodeToString(buf[:])
}

// maxReplicaNameLen bounds replica names embedded in resource identifiers.
const maxReplicaNameLen = 16

// ValidReplicaName reports whether name may be used as a replica identity
// prefix inside resource IDs: 1–16 characters of [a-z0-9].  The dash is
// excluded because it separates the prefix from the random part.
func ValidReplicaName(name string) bool {
	if len(name) == 0 || len(name) > maxReplicaNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// TagID prefixes a resource identifier with its home replica ("r03-<id>").
// Affinity-tagged IDs make federated routing stateless: a gateway holding
// only the ID of a job, sweep or file knows which container replica owns it
// without any shared lookup table.  An empty replica name leaves the ID
// untouched (single-container deployments keep the bare 32-hex form).
func TagID(replica, id string) string {
	if replica == "" {
		return id
	}
	return replica + "-" + id
}

// SplitReplicaID extracts the replica prefix of an affinity-tagged resource
// ID.  It reports false for bare (untagged) IDs and for strings whose prefix
// is not a valid replica name, so pre-federation identifiers keep working.
func SplitReplicaID(id string) (replica string, ok bool) {
	i := strings.IndexByte(id, '-')
	if i <= 0 || i >= len(id)-1 {
		return "", false
	}
	if !ValidReplicaName(id[:i]) {
		return "", false
	}
	return id[:i], true
}

// NotFoundError reports a missing resource (service, job or file).
type NotFoundError struct {
	Kind string // "service", "job" or "file"
	Name string
}

// Error implements the error interface.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("core: %s %q not found", e.Kind, e.Name)
}

// ErrNotFound constructs a NotFoundError.
func ErrNotFound(kind, name string) error { return &NotFoundError{Kind: kind, Name: name} }

// IsNotFound reports whether err is a NotFoundError.
func IsNotFound(err error) bool {
	var nf *NotFoundError
	return asErr(err, &nf)
}

// ConflictError reports an operation that is invalid in the resource's
// current state, e.g. deleting a running job without cancellation support.
type ConflictError struct {
	Message string
}

// Error implements the error interface.
func (e *ConflictError) Error() string { return "core: conflict: " + e.Message }

// ErrConflict constructs a ConflictError.
func ErrConflict(format string, args ...any) error {
	return &ConflictError{Message: fmt.Sprintf(format, args...)}
}

// BadRequestError reports a malformed or invalid client request.
type BadRequestError struct {
	Message string
}

// Error implements the error interface.
func (e *BadRequestError) Error() string { return "core: bad request: " + e.Message }

// ErrBadRequest constructs a BadRequestError.
func ErrBadRequest(format string, args ...any) error {
	return &BadRequestError{Message: fmt.Sprintf(format, args...)}
}

// UnavailableError reports a transient server condition — a full job
// queue, a shutting-down container — that the client may retry after a
// delay.  It maps to HTTP 503 Service Unavailable.
type UnavailableError struct {
	Message string
	// RetryAfter is the suggested delay before retrying (0 = none).  The
	// REST layer publishes it through the Retry-After response header and
	// the client retry policy honours it.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *UnavailableError) Error() string { return "core: unavailable: " + e.Message }

// ErrUnavailable constructs an UnavailableError with a retry hint.
func ErrUnavailable(retryAfter time.Duration, format string, args ...any) error {
	return &UnavailableError{Message: fmt.Sprintf(format, args...), RetryAfter: retryAfter}
}

// ForbiddenError reports an authorization failure.
type ForbiddenError struct {
	Message string
}

// Error implements the error interface.
func (e *ForbiddenError) Error() string { return "core: forbidden: " + e.Message }

// ErrForbidden constructs a ForbiddenError.
func ErrForbidden(format string, args ...any) error {
	return &ForbiddenError{Message: fmt.Sprintf(format, args...)}
}

// asErr is a tiny local wrapper over errors.As without importing errors in
// every call site above.
func asErr[T error](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
