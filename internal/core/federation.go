package core

// Federation wire types: the replica-side memo index feed and the load
// report consumed by the gateway's placement policy.  These travel over
// plain JSON on the infrastructure plane (GET /memo, GET /load) and are
// deliberately small — the gateway polls them at load-interval cadence
// for every replica.

// MemoIndexEntry advertises one memoized deterministic result: the
// canonical input digest, the owning service and the backing job whose
// outputs the entry replays.
type MemoIndexEntry struct {
	Key     string `json:"key"`
	Service string `json:"service"`
	JobID   string `json:"jobID"`
}

// MemoIndexPage is one page of a replica's memo index delta feed.
// Seq is the replica's cursor after applying this page; clients pass it
// back as ?since= on the next poll.  When the replica can no longer
// serve an incremental answer (cursor predates its bounded delta log,
// or the table was reset wholesale) it sets Reset and Entries carries
// the full current index — the consumer must drop everything it
// previously learned from this replica.
type MemoIndexPage struct {
	Replica string           `json:"replica,omitempty"`
	Seq     uint64           `json:"seq"`
	Reset   bool             `json:"reset,omitempty"`
	Entries []MemoIndexEntry `json:"entries,omitempty"`
	Dropped []string         `json:"dropped,omitempty"`
}

// LoadReport is a replica's point-in-time load advertisement, the input
// to the gateway's power-of-two-choices placement and saturation-based
// admission control.
type LoadReport struct {
	Replica     string `json:"replica,omitempty"`
	QueueDepth  int    `json:"queueDepth"`
	QueueCap    int    `json:"queueCap"`
	Running     int    `json:"running"`
	Workers     int    `json:"workers"`
	MemoEntries int    `json:"memoEntries"`
	MemoBytes   int64  `json:"memoBytes"`
}
