package core

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mathcloud/internal/jsonschema"
)

func TestJobStateMachine(t *testing.T) {
	legal := []struct{ from, to JobState }{
		{StateWaiting, StateRunning},
		{StateWaiting, StateCancelled},
		{StateWaiting, StateError},
		{StateRunning, StateDone},
		{StateRunning, StateError},
		{StateRunning, StateCancelled},
	}
	for _, tr := range legal {
		if !tr.from.CanTransition(tr.to) {
			t.Errorf("%s -> %s should be legal", tr.from, tr.to)
		}
	}
	illegal := []struct{ from, to JobState }{
		{StateDone, StateRunning},
		{StateError, StateDone},
		{StateCancelled, StateWaiting},
		{StateWaiting, StateDone}, // must pass through RUNNING
		{StateRunning, StateWaiting},
	}
	for _, tr := range illegal {
		if tr.from.CanTransition(tr.to) {
			t.Errorf("%s -> %s should be illegal", tr.from, tr.to)
		}
	}
}

func TestTerminalStates(t *testing.T) {
	for _, s := range []JobState{StateDone, StateError, StateCancelled} {
		if !s.Terminal() {
			t.Errorf("%s should be terminal", s)
		}
	}
	for _, s := range []JobState{StateWaiting, StateRunning} {
		if s.Terminal() {
			t.Errorf("%s should not be terminal", s)
		}
	}
	if JobState("BOGUS").Valid() {
		t.Error("bogus state is valid")
	}
}

// Property: no terminal state admits any transition.
func TestPropertyTerminalStatesAreFinal(t *testing.T) {
	states := []JobState{StateWaiting, StateRunning, StateDone, StateError, StateCancelled}
	prop := func(i, j uint8) bool {
		from := states[int(i)%len(states)]
		to := states[int(j)%len(states)]
		if from.Terminal() && from.CanTransition(to) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func testDescription() *ServiceDescription {
	num := jsonschema.New(jsonschema.TypeNumber)
	return &ServiceDescription{
		Name: "add",
		Inputs: []Param{
			{Name: "a", Schema: num},
			{Name: "b", Schema: num, Optional: true},
			{Name: "mode", Schema: jsonschema.MustParse(
				`{"type":"string","default":"fast"}`)},
		},
		Outputs: []Param{{Name: "sum", Schema: num}},
	}
}

func TestDescriptionValidate(t *testing.T) {
	if err := testDescription().Validate(); err != nil {
		t.Errorf("valid description rejected: %v", err)
	}
	bad := &ServiceDescription{Name: " "}
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	dup := &ServiceDescription{Name: "d", Inputs: []Param{{Name: "x"}, {Name: "x"}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate parameter accepted")
	}
}

func TestValidateInputs(t *testing.T) {
	d := testDescription()
	cases := []struct {
		name string
		v    Values
		ok   bool
	}{
		{"all present", Values{"a": 1.0, "b": 2.0, "mode": "x"}, true},
		{"optional omitted", Values{"a": 1.0, "mode": "x"}, true},
		{"defaulted omitted", Values{"a": 1.0}, true},
		{"required missing", Values{"b": 2.0}, false},
		{"unknown name", Values{"a": 1.0, "zz": 1.0}, false},
		{"wrong type", Values{"a": "one"}, false},
		{"file ref passes schema", Values{"a": FileRef("deadbeef")}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := d.ValidateInputs(tc.v)
			if (err == nil) != tc.ok {
				t.Errorf("err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestApplyDefaults(t *testing.T) {
	d := testDescription()
	out := d.ApplyDefaults(Values{"a": 1.0})
	if out["mode"] != "fast" {
		t.Errorf("default not applied: %v", out)
	}
	out2 := d.ApplyDefaults(Values{"a": 1.0, "mode": "slow"})
	if out2["mode"] != "slow" {
		t.Error("explicit value overridden by default")
	}
}

func TestValidateOutputs(t *testing.T) {
	d := testDescription()
	if err := d.ValidateOutputs(Values{"sum": 3.0}); err != nil {
		t.Errorf("valid outputs rejected: %v", err)
	}
	if err := d.ValidateOutputs(Values{}); err == nil {
		t.Error("missing output accepted")
	}
	if err := d.ValidateOutputs(Values{"sum": "three"}); err == nil {
		t.Error("mistyped output accepted")
	}
}

func TestFileRefs(t *testing.T) {
	ref := FileRef("http://host/files/abc")
	id, ok := FileRefID(ref)
	if !ok || id != "http://host/files/abc" {
		t.Errorf("FileRefID = %q, %v", id, ok)
	}
	if _, ok := FileRefID("plain string"); ok {
		t.Error("plain string recognized as file ref")
	}
	if _, ok := FileRefID(42.0); ok {
		t.Error("number recognized as file ref")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 32 {
			t.Fatalf("id %q has length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestErrorsClassification(t *testing.T) {
	if !IsNotFound(ErrNotFound("service", "x")) {
		t.Error("ErrNotFound not recognized")
	}
	if IsNotFound(ErrConflict("busy")) {
		t.Error("conflict recognized as not-found")
	}
	for _, err := range []error{
		ErrNotFound("job", "j"),
		ErrConflict("c %d", 1),
		ErrBadRequest("b %s", "x"),
		ErrForbidden("f"),
	} {
		if err.Error() == "" || !strings.Contains(err.Error(), "core:") {
			t.Errorf("error %v lacks package prefix", err)
		}
	}
}

func TestJobClone(t *testing.T) {
	j := &Job{
		ID:      "1",
		Inputs:  Values{"a": 1.0},
		Outputs: Values{"b": 2.0},
		Blocks:  map[string]JobState{"x": StateDone},
		Log:     []string{"started"},
	}
	c := j.Clone()
	c.Inputs["a"] = 9.0
	c.Blocks["x"] = StateError
	c.Log[0] = "changed"
	if j.Inputs["a"] != 1.0 || j.Blocks["x"] != StateDone || j.Log[0] != "started" {
		t.Error("Clone shares mutable state with the original")
	}
}

func TestPrincipalEffective(t *testing.T) {
	p := Principal{ID: "cn:wms"}
	if p.Effective() != "cn:wms" {
		t.Errorf("Effective = %q", p.Effective())
	}
	p.OnBehalfOf = "openid:alice"
	if p.Effective() != "openid:alice" {
		t.Errorf("Effective = %q", p.Effective())
	}
}

func TestValuesHelpers(t *testing.T) {
	v := Values{"b": 1.0, "a": 2.0}
	names := v.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	c := v.Clone()
	c["a"] = 9.0
	if v["a"] != 2.0 {
		t.Error("Clone shares storage")
	}
	var nilV Values
	if nilV.Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	type doc struct {
		D Duration `json:"d,omitempty"`
	}
	data, err := json.Marshal(doc{D: Duration(90 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"d":"1m30s"}` {
		t.Errorf("marshal = %s", data)
	}
	var out doc
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.D.Std() != 90*time.Second {
		t.Errorf("round trip = %v", out.D.Std())
	}
	// Zero is omitted, so configurations without deadlines stay clean.
	data, _ = json.Marshal(doc{})
	if string(data) != `{}` {
		t.Errorf("zero marshal = %s", data)
	}
	if err := json.Unmarshal([]byte(`{"d":"bogus"}`), &out); err == nil {
		t.Error("invalid duration accepted")
	}
}

func TestUnavailableError(t *testing.T) {
	err := ErrUnavailable(2*time.Second, "queue is %s", "full")
	var unavail *UnavailableError
	if !asErr(err, &unavail) {
		t.Fatalf("err = %T", err)
	}
	if unavail.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v", unavail.RetryAfter)
	}
	if !strings.Contains(err.Error(), "queue is full") {
		t.Errorf("message = %q", err.Error())
	}
}
