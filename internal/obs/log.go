package obs

import (
	"log/slog"
	"os"
	"sync/atomic"
)

// logLevel gates the default structured logger.  It starts at Warn so the
// per-request and per-job Info records stay silent in tests and libraries;
// the server binaries raise it to Info (SetLogLevel) to stream structured
// request/job logs.
var logLevel slog.LevelVar

// logger is the process-wide structured logger for request and job
// lifecycle records.  Every record carries the request ID when one is in
// scope, which is what makes a workflow's fan-out greppable across
// services.
var logger atomic.Pointer[slog.Logger]

func init() {
	logLevel.Set(slog.LevelWarn)
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &logLevel})))
}

// Logger returns the current structured logger.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the structured logger (nil restores the default).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &logLevel}))
	}
	logger.Store(l)
}

// SetLogLevel adjusts the level of the default logger.  Server binaries
// call it with slog.LevelInfo to enable request/job logging.
func SetLogLevel(l slog.Level) { logLevel.Set(l) }
