package obs

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "requests")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	g := r.Gauge("t_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	h := r.Histogram("t_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	// p50 lands in the (0.1, 1] bucket, p99 in the overflow bucket which
	// clamps to the last finite bound.
	if q := h.Quantile(0.5); q <= 0.1 || q > 1 {
		t.Fatalf("p50 = %v, want in (0.1, 1]", q)
	}
	if q := h.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %v, want clamp to 10", q)
	}
}

func TestVecChildrenAreShared(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_http_total", "by route", "route", "code")
	v.With("job", "2xx").Inc()
	v.With("job", "2xx").Inc()
	v.With("job", "5xx").Inc()
	if got := v.With("job", "2xx").Value(); got != 2 {
		t.Fatalf("child = %v, want 2", got)
	}
	if got := v.With("job", "5xx").Value(); got != 1 {
		t.Fatalf("child = %v, want 1", got)
	}
}

func TestReRegistrationReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_shared_total", "shared")
	b := r.Counter("t_shared_total", "shared")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("shared counter = %v, want 2", got)
	}
}

func TestPrometheusExpositionValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_jobs_total", "total jobs").Add(4)
	r.Gauge("t_queue_depth", "queue depth").Set(2)
	v := r.HistogramVec("t_req_seconds", "request latency", []float64{0.01, 0.1, 1}, "route")
	v.With("job").Observe(0.05)
	v.With("job").Observe(0.5)
	v.With(`we"ird\`).Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE t_jobs_total counter",
		"t_jobs_total 4",
		"# TYPE t_req_seconds histogram",
		`t_req_seconds_bucket{route="job",le="0.1"} 1`,
		`t_req_seconds_bucket{route="job",le="+Inf"} 2`,
		`t_req_seconds_count{route="job"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, out)
	}
}

func TestValidatorRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "t_x 1\n",
		"bad value":          "# TYPE t_x counter\nt_x abc\n",
		"bad name":           "# TYPE 9x counter\n9x 1\n",
		"duplicate series":   "# TYPE t_x counter\nt_x 1\nt_x 2\n",
		"unterminated block": "# TYPE t_x counter\nt_x{a=\"b\" 1\n",
		"histogram no +Inf": "# TYPE t_h histogram\n" +
			"t_h_bucket{le=\"1\"} 1\nt_h_sum 1\nt_h_count 1\n",
		"histogram count mismatch": "# TYPE t_h histogram\n" +
			"t_h_bucket{le=\"1\"} 1\nt_h_bucket{le=\"+Inf\"} 2\nt_h_sum 1\nt_h_count 3\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validator accepted malformed document:\n%s", name, doc)
		}
	}
}

func TestStatusSnapshotPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_run_seconds", "run time", []float64{0.1, 1, 10})
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	st := r.Snapshot()
	hs, ok := st.Histograms["t_run_seconds"]
	if !ok {
		t.Fatalf("snapshot missing histogram: %+v", st)
	}
	if hs.Count != 100 {
		t.Fatalf("count = %d", hs.Count)
	}
	if hs.P50 <= 0.1 || hs.P50 > 1 {
		t.Fatalf("p50 = %v, want in (0.1, 1]", hs.P50)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
}

func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_h_total", "handled").Inc()
	mw := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(mw, httptest.NewRequest("GET", "/metrics", nil))
	if mw.Code != 200 || !strings.Contains(mw.Body.String(), "t_h_total 1") {
		t.Fatalf("metrics handler: %d %q", mw.Code, mw.Body.String())
	}
	sw := httptest.NewRecorder()
	r.StatusHandler().ServeHTTP(sw, httptest.NewRequest("GET", "/status", nil))
	if sw.Code != 200 || !strings.Contains(sw.Body.String(), `"t_h_total": 1`) {
		t.Fatalf("status handler: %d %q", sw.Code, sw.Body.String())
	}
	bad := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(bad, httptest.NewRequest("POST", "/metrics", nil))
	if bad.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", bad.Code)
	}
}

func TestConcurrentUpdatesAndExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_conc_total", "concurrent")
	h := r.HistogramVec("t_conc_seconds", "concurrent", []float64{0.01, 0.1, 1}, "route")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			route := []string{"a", "b", "c"}[i%3]
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.With(route).Observe(float64(j%100) / 100)
			}
		}(i)
	}
	// Scrape concurrently with the writers; the exposition must stay
	// well-formed mid-flight.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				r.WritePrometheus(&b)
				if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
					t.Errorf("mid-flight exposition invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := RequestIDFrom(ctx); ok {
		t.Fatal("empty context reported a request ID")
	}
	ctx, id := EnsureRequestID(ctx)
	if len(id) != 16 {
		t.Fatalf("id = %q, want 16 hex digits", id)
	}
	if got, ok := RequestIDFrom(ctx); !ok || got != id {
		t.Fatalf("round trip: %q %v", got, ok)
	}
	ctx2, id2 := EnsureRequestID(ctx)
	if id2 != id || ctx2 != ctx {
		t.Fatal("EnsureRequestID regenerated an existing ID")
	}
}

func TestDisabledRecordingIsNoop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_off_total", "off")
	h := r.Histogram("t_off_seconds", "off", []float64{1})
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	h.Observe(0.5)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled recording still counted: %v %d", c.Value(), h.Count())
	}
}
