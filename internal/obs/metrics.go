// Package obs is the observability plane of the MathCloud platform: a
// dependency-free metrics registry with Prometheus text-format exposition,
// request-ID tracing propagated across the unified REST API, structured
// slog-based request/job logging, and opt-in pprof wiring.
//
// The paper's Everest container manages queues, worker pools and adapters
// but gives operators no visibility into them; production REST gateways for
// scientific computing (FirecREST) treat monitoring as a first-class
// subsystem, and the UWS job pattern records per-phase timestamps on every
// job.  This package supplies both: every layer — the container's HTTP
// handlers, the job manager, the client retry policy, the description cache
// and the catalogue sweeps — records into one process-wide registry served
// at GET /metrics (Prometheus text) and GET /status (JSON with aggregate
// percentiles).
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide instrumentation switch.  Disabling it turns
// every Observe/Add/Inc into a near-free no-op, which is how the overhead
// ablation (BENCH_4.json) measures the instrumented-vs-bare hot paths
// inside one binary.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches metric recording on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// Standard bucket layouts.  LatencyBuckets suit sub-second HTTP handling
// and probe round trips; DurationBuckets stretch to minutes for job
// queue-wait and run times.
var (
	LatencyBuckets  = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	DurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}
)

// metricType is the Prometheus family type.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families.  All methods are safe for concurrent
// use; the recording paths are lock-free after the first lookup.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	start    time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), start: time.Now()}
}

// Default is the process-wide registry that package-level constructors
// register into and that MetricsHandler/StatusHandler expose.
var Default = NewRegistry()

// family is one named metric family with zero or more labelled children.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]*child
}

// child is one (label-set, value) series.  Counter and gauge values are
// float64 bits in bits; histograms use the counts/hcount/sumBits trio.
type child struct {
	labels  string // rendered `k="v",…` (empty for plain metrics)
	touched atomic.Bool
	bits    atomic.Uint64

	bounds  []float64
	counts  []atomic.Uint64 // per-bucket (non-cumulative); last is +Inf
	hcount  atomic.Uint64
	sumBits atomic.Uint64
}

// touch marks the series for exposition.  Labeled children start hidden so
// callers can pre-resolve full label cross products for allocation-free
// recording without flooding /metrics with never-used zero series; the
// series appears on its first update, like a lazy client vector.
func (c *child) touch() {
	if !c.touched.Load() {
		c.touched.Store(true)
	}
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// family registers (or returns the existing) family with the given shape.
// Re-registration with a different type or label set is a programming
// error and panics at init time rather than corrupting exposition.
func (r *Registry) family(name, help string, typ metricType, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic("obs: metric " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// child returns (creating on first use) the series with the rendered label
// string key.
func (f *family) child(key string) *child {
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{labels: key}
	c.touched.Store(key == "") // unlabeled singletons always exposed
	if f.typ == typeHistogram {
		c.bounds = f.bounds
		c.counts = make([]atomic.Uint64, len(f.bounds)+1)
	}
	f.children[key] = c
	return c
}

// renderLabels builds the canonical `k="v",…` string for a label set.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add increases the counter by v (negative deltas are ignored).
func (c Counter) Add(v float64) {
	if v < 0 || !enabled.Load() {
		return
	}
	c.c.touch()
	addFloat(&c.c.bits, v)
}

// Value returns the current count.
func (c Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.c.touch()
	g.c.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (use a negative v to decrease).
func (g Gauge) Add(v float64) {
	if !enabled.Load() {
		return
	}
	g.c.touch()
	addFloat(&g.c.bits, v)
}

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Histogram accumulates observations into fixed buckets.
type Histogram struct{ c *child }

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	c := h.c
	c.touch()
	idx := len(c.bounds)
	for i, b := range c.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	c.counts[idx].Add(1)
	c.hcount.Add(1)
	addFloat(&c.sumBits, v)
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.c.hcount.Load() }

// Sum returns the sum of all observations.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.c.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts by
// linear interpolation inside the owning bucket.  Observations beyond the
// last finite bound clamp to that bound, the usual Prometheus convention.
func (h Histogram) Quantile(q float64) float64 {
	return quantile(h.c, q)
}

func quantile(c *child, q float64) float64 {
	total := c.hcount.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range c.counts {
		n := float64(c.counts[i].Load())
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= rank {
			if i >= len(c.bounds) {
				// Overflow bucket: clamp to the last finite bound.
				return c.bounds[len(c.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = c.bounds[i-1]
			}
			upper := c.bounds[i]
			return lower + (upper-lower)*((rank-cum)/n)
		}
		cum += n
	}
	return c.bounds[len(c.bounds)-1]
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in declaration
// order).  Children are cached; repeated calls with the same values cost a
// map lookup.
func (v CounterVec) With(values ...string) Counter {
	return Counter{c: v.f.child(renderLabels(v.f.labels, values))}
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) Gauge {
	return Gauge{c: v.f.child(renderLabels(v.f.labels, values))}
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	return Histogram{c: v.f.child(renderLabels(v.f.labels, values))}
}

// Registry constructors.  Each returns the existing metric when the name is
// already registered with the same shape, so multiple containers in one
// process share series instead of clashing.

// Counter registers (or fetches) a plain counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{c: r.family(name, help, typeCounter, nil, nil).child("")}
}

// Gauge registers (or fetches) a plain gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{c: r.family(name, help, typeGauge, nil, nil).child("")}
}

// Histogram registers (or fetches) a plain histogram with the given bucket
// upper bounds (must be sorted ascending).
func (r *Registry) Histogram(name, help string, bounds []float64) Histogram {
	f := r.family(name, help, typeHistogram, nil, bounds)
	return Histogram{c: f.child("")}
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) HistogramVec {
	return HistogramVec{f: r.family(name, help, typeHistogram, labels, bounds)}
}

// Package-level constructors registering into Default.

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string) Counter { return Default.Counter(name, help) }

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) Gauge { return Default.Gauge(name, help) }

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string, bounds []float64) Histogram {
	return Default.Histogram(name, help, bounds)
}

// NewCounterVec registers a labelled counter family in the default registry.
func NewCounterVec(name, help string, labels ...string) CounterVec {
	return Default.CounterVec(name, help, labels...)
}

// NewGaugeVec registers a labelled gauge family in the default registry.
func NewGaugeVec(name, help string, labels ...string) GaugeVec {
	return Default.GaugeVec(name, help, labels...)
}

// NewHistogramVec registers a labelled histogram family in the default
// registry.
func NewHistogramVec(name, help string, bounds []float64, labels ...string) HistogramVec {
	return Default.HistogramVec(name, help, bounds, labels...)
}

// sortedFamilies snapshots the families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's exposed children ordered by label
// string.  Labeled children that were never updated are omitted (see
// child.touch).
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	cs := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		if c.touched.Load() {
			cs = append(cs, c)
		}
	}
	f.mu.RUnlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].labels < cs[j].labels })
	return cs
}
