package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// formatValue renders a sample value the way the Prometheus text format
// expects: shortest representation, "+Inf"/"-Inf"/"NaN" spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample writes one `name{labels} value` line.
func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

// joinLabels merges a child's label string with an extra label pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4): a HELP and TYPE comment per family,
// then one sample line per series, histograms expanded into cumulative
// `_bucket` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range f.sortedChildren() {
			switch f.typ {
			case typeHistogram:
				var cum uint64
				for i := range c.counts {
					cum += c.counts[i].Load()
					le := "+Inf"
					if i < len(c.bounds) {
						le = formatValue(c.bounds[i])
					}
					writeSample(w, f.name+"_bucket",
						joinLabels(c.labels, `le="`+le+`"`), float64(cum))
				}
				writeSample(w, f.name+"_sum", c.labels, math.Float64frombits(c.sumBits.Load()))
				// Derive _count from the cumulative bucket total rather than
				// the separate count atomic: a scrape racing Observe then
				// still satisfies `_count == +Inf bucket`, which the
				// validator (and a real Prometheus server) checks.
				writeSample(w, f.name+"_count", c.labels, float64(cum))
			default:
				writeSample(w, f.name, c.labels, math.Float64frombits(c.bits.Load()))
			}
		}
	}
}

// escapeHelp escapes newlines and backslashes in a HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// HistogramStatus is the JSON summary of one histogram series: totals plus
// the aggregate percentiles /status surfaces for operators.
type HistogramStatus struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Status is the JSON representation served at GET /status.
type Status struct {
	UptimeSeconds float64                    `json:"uptimeSeconds"`
	Counters      map[string]float64         `json:"counters"`
	Gauges        map[string]float64         `json:"gauges"`
	Histograms    map[string]HistogramStatus `json:"histograms"`
}

// seriesKey names one series in the JSON maps: the family name, with the
// label string in braces when present.
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Snapshot captures the current state of every registered series.
func (r *Registry) Snapshot() Status {
	st := Status{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Counters:      make(map[string]float64),
		Gauges:        make(map[string]float64),
		Histograms:    make(map[string]HistogramStatus),
	}
	for _, f := range r.sortedFamilies() {
		for _, c := range f.sortedChildren() {
			key := seriesKey(f.name, c.labels)
			switch f.typ {
			case typeCounter:
				st.Counters[key] = math.Float64frombits(c.bits.Load())
			case typeGauge:
				st.Gauges[key] = math.Float64frombits(c.bits.Load())
			case typeHistogram:
				st.Histograms[key] = HistogramStatus{
					Count: c.hcount.Load(),
					Sum:   math.Float64frombits(c.sumBits.Load()),
					P50:   quantile(c, 0.50),
					P90:   quantile(c, 0.90),
					P99:   quantile(c, 0.99),
				}
			}
		}
	}
	return st
}

// MetricsHandler serves the registry in the Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}

// MetricsHandler serves the default registry at GET /metrics.
func MetricsHandler() http.Handler { return Default.MetricsHandler() }

// StatusHandler serves the JSON status view: every series plus aggregate
// percentiles for the histogram families.  (JSON is encoded here directly
// rather than via internal/rest, which imports this package.)
func (r *Registry) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// StatusHandler serves the default registry at GET /status.
func StatusHandler() http.Handler { return Default.StatusHandler() }
