package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader carries the request identifier across service calls.  It
// is generated at ingress (the container's HTTP handler), stored in the
// request context, propagated by the client library, the workflow invoker
// and the catalogue probes on their outbound calls, and attached to
// structured request/job logs — so one workflow run's fan-out across
// services can be correlated end to end.
const RequestIDHeader = "X-Request-ID"

// ctxKey is the private context key type for the request ID.
type ctxKey struct{}

// WithRequestID returns a context carrying the given request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom extracts the request ID stored in ctx, if any.
func RequestIDFrom(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(ctxKey{}).(string)
	return id, ok && id != ""
}

// NewRequestID returns a fresh 16-hex-digit request identifier.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failure is unrecoverable for the process, exactly as
		// in core.NewID.
		panic("obs: cannot generate request id: " + err.Error())
	}
	return hex.EncodeToString(buf[:])
}

// EnsureRequestID returns ctx carrying a request ID, generating one when
// absent, together with the ID in effect.
func EnsureRequestID(ctx context.Context) (context.Context, string) {
	if id, ok := RequestIDFrom(ctx); ok {
		return ctx, id
	}
	id := NewRequestID()
	return WithRequestID(ctx, id), id
}
