package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts the opt-in debug server on addr: net/http/pprof under
// /debug/pprof/ plus the /metrics and /status views of the default
// registry.  It returns the running server (its Addr field holds the bound
// address, useful with ":0"); shut it down with Close.  The profiler is
// wired on a private mux, so enabling it never leaks pprof onto the
// container's public API surface.
func ServeDebug(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/status", StatusHandler())
	srv := &http.Server{
		Addr:              ln.Addr().String(),
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
