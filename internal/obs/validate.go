package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-format (version 0.0.4)
// document for well-formedness: comment grammar, metric-name and label
// syntax, parseable sample values, TYPE declarations preceding their
// samples, no duplicate series, and complete histogram expansions (a
// `+Inf` bucket whose cumulative count equals the `_count` sample).  It is
// the CI gate that keeps GET /metrics scrapeable — a malformed line would
// otherwise fail only when a real Prometheus server scrapes it.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	types := make(map[string]string)   // family → declared type
	seen := make(map[string]bool)      // name{labels} → sample present
	infBucket := make(map[string]bool) // family+labels(without le) → +Inf seen
	bucketCum := make(map[string]float64)
	countVal := make(map[string]float64)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := validateComment(text, types); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		family := name
		typ := types[name]
		if typ == "" {
			// Histogram samples use suffixed names; resolve the family.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && types[base] == "histogram" {
					family, typ = base, "histogram"
					break
				}
			}
		}
		if typ == "" {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", line, name)
		}
		if typ == "histogram" && family == name {
			return fmt.Errorf("line %d: histogram %q exposed without _bucket/_sum/_count suffix", line, name)
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", line, series)
		}
		seen[series] = true
		if typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, rest, err := splitLE(labels)
				if err != nil {
					return fmt.Errorf("line %d: %w", line, err)
				}
				key := family + "{" + rest + "}"
				if value < bucketCum[key] {
					return fmt.Errorf("line %d: non-cumulative bucket in %s", line, key)
				}
				bucketCum[key] = value
				if le == "+Inf" {
					infBucket[key] = true
				}
			case strings.HasSuffix(name, "_count"):
				countVal[family+"{"+labels+"}"] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key := range bucketCum {
		if !infBucket[key] {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", key)
		}
		if c, ok := countVal[key]; !ok {
			return fmt.Errorf("histogram %s has buckets but no _count sample", key)
		} else if c != bucketCum[key] {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", key, c, bucketCum[key])
		}
	}
	return nil
}

// validateComment checks a # HELP / # TYPE line and records declared types.
func validateComment(text string, types map[string]string) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, permitted
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", text)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", text)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE comment", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE declaration for %q", name)
		}
		types[name] = typ
	}
	return nil
}

// parseSample splits `name{labels} value [timestamp]`.
func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name, rest = rest[:i], rest[i:]
	} else {
		return "", "", 0, fmt.Errorf("sample %q has no value", text)
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", text)
		}
		labels = rest[1:end]
		rest = rest[end+1:]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample %q", text)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// validateLabels checks a `k="v",…` label block.
func validateLabels(labels string) error {
	for _, pair := range splitLabelPairs(labels) {
		eq := strings.Index(pair, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		k, v := pair[:eq], pair[eq+1:]
		if !validLabelName(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(labels string) []string {
	var out []string
	var b strings.Builder
	inQuote, escaped := false, false
	for _, r := range labels {
		switch {
		case escaped:
			escaped = false
			b.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			b.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			b.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, strings.TrimSpace(b.String()))
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	if b.Len() > 0 {
		out = append(out, strings.TrimSpace(b.String()))
	}
	return out
}

// splitLE extracts the le label from a bucket label block, returning the
// remaining labels rendered canonically.
func splitLE(labels string) (le, rest string, err error) {
	var others []string
	for _, pair := range splitLabelPairs(labels) {
		if strings.HasPrefix(pair, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(pair, `le="`), `"`)
			continue
		}
		others = append(others, pair)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample without le label: {%s}", labels)
	}
	return le, strings.Join(others, ","), nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
