package rest

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mathcloud/internal/core"
)

func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{core.ErrNotFound("job", "x"), 404},
		{core.ErrBadRequest("bad"), 400},
		{core.ErrConflict("busy"), 409},
		{core.ErrForbidden("no"), 403},
		{errors.New("mystery failure"), 500},
	}
	for _, tc := range cases {
		if got := StatusOf(tc.err); got != tc.want {
			t.Errorf("StatusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestWriteErrorBody(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, core.ErrNotFound("service", "x"))
	if rec.Code != 404 {
		t.Fatalf("code = %d", rec.Code)
	}
	var body ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != 404 || !strings.Contains(body.Error, "not found") {
		t.Errorf("body = %+v", body)
	}
}

func TestReadJSON(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"a": 1}`))
	var v map[string]any
	if err := ReadJSON(r, &v); err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if v["a"] != 1.0 {
		t.Errorf("v = %v", v)
	}

	r = httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"a": 1} trailing`))
	if err := ReadJSON(r, &v); err == nil {
		t.Error("trailing garbage accepted")
	}
	r = httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{nope`))
	if err := ReadJSON(r, &v); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestShiftPath(t *testing.T) {
	cases := []struct {
		in, head, tail string
	}{
		{"/a/b/c", "a", "/b/c"},
		{"/a", "a", "/"},
		{"/", "", "/"},
		{"", "", "/"},
		{"a/b", "a", "/b"},
	}
	for _, tc := range cases {
		head, tail := ShiftPath(tc.in)
		if head != tc.head || tail != tc.tail {
			t.Errorf("ShiftPath(%q) = (%q, %q), want (%q, %q)",
				tc.in, head, tail, tc.head, tc.tail)
		}
	}
}

func TestWantsHTML(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"text/html,application/xhtml+xml", true},
		{"application/json", false},
		{"", false},
		{"application/json, text/html", false}, // JSON preferred
		{"text/html, application/json", true},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		r.Header.Set("Accept", tc.accept)
		if got := WantsHTML(r); got != tc.want {
			t.Errorf("WantsHTML(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	rec := httptest.NewRecorder()
	MethodNotAllowed(rec, http.MethodGet, http.MethodPost)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("code = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET, POST" {
		t.Errorf("Allow = %q", allow)
	}
}
