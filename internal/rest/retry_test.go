package rest_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/rest"
	"mathcloud/internal/rest/resttest"
)

// fastRetry keeps backoff delays negligible in tests.
func fastRetry() *rest.RetryPolicy {
	return &rest.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
}

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRetrySucceedsAfterDroppedConnections(t *testing.T) {
	srv := okServer(t)
	flaky := resttest.Script(srv.Client().Transport, resttest.Drop, resttest.Drop)
	cl := &http.Client{Transport: flaky}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	resp, err := fastRetry().Do(cl, req)
	if err != nil {
		t.Fatalf("GET through flaky transport failed: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if got := flaky.Attempts(); got != 3 {
		t.Errorf("attempts = %d, want 3 (2 drops + success)", got)
	}
}

func TestRetryHonoursRetryAfterOn503(t *testing.T) {
	srv := okServer(t)
	flaky := resttest.Script(srv.Client().Transport, resttest.Unavailable)
	flaky.RetryAfter = time.Second
	cl := &http.Client{Transport: flaky}
	// MaxDelay caps the server's hint so the test stays fast while still
	// proving the hinted delay is used instead of the tiny base backoff.
	policy := &rest.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 80 * time.Millisecond}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	start := time.Now()
	resp, err := policy.Do(cl, req)
	if err != nil {
		t.Fatalf("GET failed: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if got := flaky.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
	if elapsed := time.Since(start); elapsed < 75*time.Millisecond {
		t.Errorf("retried after %v, want >= capped Retry-After of 80ms", elapsed)
	}
}

// unreplayableBody is a streaming body http.NewRequest cannot snapshot, so
// the request has no GetBody and must not be retried.
type unreplayableBody struct{ r io.Reader }

func (b *unreplayableBody) Read(p []byte) (int, error) { return b.r.Read(p) }

func TestNoRetryForUnreplayablePost(t *testing.T) {
	srv := okServer(t)
	flaky := resttest.Script(srv.Client().Transport, resttest.Drop)
	cl := &http.Client{Transport: flaky}
	req, _ := http.NewRequest(http.MethodPost, srv.URL, &unreplayableBody{strings.NewReader("data")})
	if req.GetBody != nil {
		t.Fatal("test premise broken: body is replayable")
	}
	if _, err := fastRetry().Do(cl, req); err == nil {
		t.Fatal("unreplayable POST through dropping transport succeeded")
	}
	if got := flaky.Attempts(); got != 1 {
		t.Errorf("attempts = %d, want 1 (no retry of an unreplayable POST)", got)
	}
}

func TestPostWithRewindableBodyRetriedOn503(t *testing.T) {
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(data))
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	flaky := resttest.Script(srv.Client().Transport, resttest.Unavailable)
	cl := &http.Client{Transport: flaky}
	req, _ := http.NewRequest(http.MethodPost, srv.URL, strings.NewReader("payload"))
	resp, err := fastRetry().Do(cl, req)
	if err != nil {
		t.Fatalf("POST failed: %v", err)
	}
	defer resp.Body.Close()
	if len(bodies) != 1 || bodies[0] != "payload" {
		t.Errorf("server saw bodies %q, want exactly one full replay", bodies)
	}
	if got := flaky.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

func TestRetryStopsOnContextCancellation(t *testing.T) {
	srv := okServer(t)
	// Endless 503s: only the context stops the loop.
	flaky := resttest.Script(srv.Client().Transport,
		resttest.Unavailable, resttest.Unavailable, resttest.Unavailable,
		resttest.Unavailable, resttest.Unavailable, resttest.Unavailable)
	cl := &http.Client{Transport: flaky}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	policy := &rest.RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	start := time.Now()
	_, err := policy.Do(cl, req)
	if err == nil {
		t.Fatal("Do against endless 503s succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Do kept retrying for %v after context expiry", elapsed)
	}
}

func TestWriteErrorAdvertisesRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	rest.WriteError(rec, core.ErrUnavailable(2*time.Second, "job queue is full"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
}

func TestStatusOfUnavailable(t *testing.T) {
	if got := rest.StatusOf(core.ErrUnavailable(0, "x")); got != http.StatusServiceUnavailable {
		t.Errorf("StatusOf = %d, want 503", got)
	}
}

// TestJitterBounds pins the poll-desynchronization contract: Jitter returns
// a value in [d, 3d/2), never less than the minimum poll delay and never
// unbounded, and passes non-positive delays through untouched.
func TestJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		got := rest.Jitter(d)
		if got < d || got >= d+d/2 {
			t.Fatalf("Jitter(%v) = %v, want in [%v, %v)", d, got, d, d+d/2)
		}
	}
	if got := rest.Jitter(0); got != 0 {
		t.Errorf("Jitter(0) = %v", got)
	}
	if got := rest.Jitter(-time.Second); got != -time.Second {
		t.Errorf("Jitter(-1s) = %v", got)
	}
}
