package rest_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// recordingServer captures the X-Request-ID header of every attempt it
// sees, answering 503 for the first `fail` attempts and 200 afterwards.
type recordingServer struct {
	mu   sync.Mutex
	ids  []string
	fail int
}

func (s *recordingServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.ids = append(s.ids, r.Header.Get(obs.RequestIDHeader))
		n := len(s.ids)
		s.mu.Unlock()
		if n <= s.fail {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}
}

func (s *recordingServer) seen() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.ids...)
}

// TestRetryReusesRequestID proves the trace contract of the retry layer:
// every attempt of one logical request carries the same X-Request-ID, so a
// server log shows N correlated attempts rather than N unrelated requests.
func TestRetryReusesRequestID(t *testing.T) {
	rec := &recordingServer{fail: 2}
	srv := httptest.NewServer(rec.handler())
	defer srv.Close()

	policy := &rest.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := policy.Do(srv.Client(), req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	ids := rec.seen()
	if len(ids) != 3 {
		t.Fatalf("attempts = %d, want 3 (2 failures + success)", len(ids))
	}
	if ids[0] == "" {
		t.Fatal("first attempt carried no X-Request-ID")
	}
	for i, id := range ids {
		if id != ids[0] {
			t.Errorf("attempt %d carried ID %q, want %q (retries must reuse the ID)", i, id, ids[0])
		}
	}
}

// TestRetryPropagatesContextRequestID proves that an ID established
// upstream (an ingress middleware, a catalogue sweep) and carried by the
// request context is the one stamped on the wire.
func TestRetryPropagatesContextRequestID(t *testing.T) {
	rec := &recordingServer{fail: 1}
	srv := httptest.NewServer(rec.handler())
	defer srv.Close()

	ctx := obs.WithRequestID(context.Background(), "trace-from-ingress-01")
	policy := &rest.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := policy.Do(srv.Client(), req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for i, id := range rec.seen() {
		if id != "trace-from-ingress-01" {
			t.Errorf("attempt %d carried ID %q, want the context-propagated ID", i, id)
		}
	}
}

// TestRetryKeepsExplicitHeader proves that an ID already stamped on the
// request by the caller wins over both the context and generation.
func TestRetryKeepsExplicitHeader(t *testing.T) {
	rec := &recordingServer{}
	srv := httptest.NewServer(rec.handler())
	defer srv.Close()

	ctx := obs.WithRequestID(context.Background(), "from-context")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "explicit-id")
	resp, err := rest.NoRetry.Do(srv.Client(), req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ids := rec.seen(); len(ids) != 1 || ids[0] != "explicit-id" {
		t.Fatalf("seen = %v, want the explicit header preserved", ids)
	}
}
