// Package resttest provides fault-injection helpers for exercising the
// platform's fault-tolerance layer: a scripted flaky RoundTripper that
// injects connection failures and transient server responses in front of a
// real transport.  Tests across the repository use it to prove that jobs
// and calls always reach a terminal outcome under dropped connections,
// overload responses and slow servers.
package resttest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Fault selects the behaviour of one attempt through a FlakyTripper.
type Fault int

const (
	// Pass forwards the attempt to the underlying transport untouched.
	Pass Fault = iota
	// Drop fails the attempt with a connection-level error before any
	// bytes reach the server, as if the peer reset the connection.
	Drop
	// Unavailable synthesizes a 503 Service Unavailable response (with a
	// Retry-After header when the tripper's RetryAfter is set) without
	// touching the network — the overload answer a full container gives.
	Unavailable
	// Hang blocks until the request context is cancelled, then fails with
	// its error — a black-holed connection.
	Hang
)

// droppedError is the connection-level error injected by Drop.
type droppedError struct{ attempt int }

func (e *droppedError) Error() string {
	return fmt.Sprintf("resttest: injected connection failure (attempt %d)", e.attempt)
}

// Timeout marks the error as transient the way net errors do.
func (e *droppedError) Timeout() bool   { return true }
func (e *droppedError) Temporary() bool { return true }

// FlakyTripper is an http.RoundTripper that executes a scripted sequence
// of faults, one per attempt, then passes every further attempt through.
// It is safe for concurrent use; concurrent attempts consume script slots
// in arrival order.
type FlakyTripper struct {
	// Next handles attempts whose fault is Pass; nil uses
	// http.DefaultTransport.
	Next http.RoundTripper
	// RetryAfter, when positive, is advertised on injected 503 responses.
	RetryAfter time.Duration

	mu       sync.Mutex
	script   []Fault
	attempts int
}

// Script builds a FlakyTripper over next that injects the given faults in
// order, one per attempt.
func Script(next http.RoundTripper, faults ...Fault) *FlakyTripper {
	return &FlakyTripper{Next: next, script: faults}
}

// Attempts returns how many attempts the tripper has seen.
func (t *FlakyTripper) Attempts() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.attempts++
	n := t.attempts
	fault := Pass
	if len(t.script) > 0 {
		fault = t.script[0]
		t.script = t.script[1:]
	}
	t.mu.Unlock()

	switch fault {
	case Drop:
		// Consume the body first: a real connection reset can happen after
		// the request was (partially) written.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return nil, &droppedError{attempt: n}
	case Unavailable:
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		resp := &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(bytes.NewReader(nil)),
			Request: req,
		}
		if t.RetryAfter > 0 {
			secs := int(t.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			resp.Header.Set("Retry-After", strconv.Itoa(secs))
		}
		return resp, nil
	case Hang:
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		<-req.Context().Done()
		return nil, req.Context().Err()
	default:
		next := t.Next
		if next == nil {
			next = http.DefaultTransport
		}
		return next.RoundTrip(req)
	}
}
