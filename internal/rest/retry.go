package rest

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mathcloud/internal/obs"
)

// Retry metric families (DESIGN.md §5d): how often transient faults force a
// replay, and how much wall-clock time clients spend backed off.
var (
	metRetryAttempts = obs.NewCounter("mc_retry_attempts_total",
		"Request attempts replayed after a transient failure (503/429, gateway 502/504 on idempotent methods, or connection error).")
	metRetryBackoff = obs.NewCounter("mc_retry_backoff_seconds_total",
		"Total wall-clock time spent sleeping between retry attempts.")
)

// RetryPolicy retries transient HTTP failures with exponential backoff and
// jitter.  It is the client-side half of the platform's fault-tolerance
// contract: servers signal transient conditions with 503 + Retry-After (a
// full job queue, a shutting-down container), and every client component —
// the client library, the workflow invoker, the catalogue pinger — routes
// requests through a policy so those conditions are absorbed instead of
// surfacing as errors.
//
// A request is retried when the failure is safe to replay:
//
//   - connection-level errors (dial refused, reset, broken keep-alive) on
//     idempotent methods, or on any request whose body can be rewound
//     (req.GetBody != nil, which http.NewRequest sets for in-memory bodies);
//   - 503 Service Unavailable and 429 Too Many Requests responses, under
//     the same replayability condition, honouring the Retry-After header
//     when the server provides one;
//   - 502 Bad Gateway and 504 Gateway Timeout responses, but only for
//     idempotent methods: these are a routing tier reporting that a backend
//     replica died mid-request, so a non-idempotent request may already have
//     executed.  The gateway re-resolves replica health on every attempt, so
//     the replay lands on a live replica.
//
// Other status codes are returned to the caller untouched: they are
// deterministic answers, not faults.  Context cancellation always stops
// retrying immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 100 ms); each further
	// attempt doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff and any server Retry-After hint
	// (default 5 s), bounding worst-case latency.
	MaxDelay time.Duration
}

// DefaultRetry is the policy used when a component's Retry field is nil.
var DefaultRetry = &RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}

// NoRetry disables retrying: every request gets exactly one attempt.
var NoRetry = &RetryPolicy{MaxAttempts: 1}

func (p *RetryPolicy) maxAttempts() int {
	if p == nil {
		return DefaultRetry.MaxAttempts
	}
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) baseDelay() time.Duration {
	if p == nil || p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p *RetryPolicy) maxDelay() time.Duration {
	if p == nil || p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

// jitterRand adds the random half of each backoff delay.  math/rand's
// global source is locked internally, but a private source keeps the policy
// independent of global seeding.
var jitterRand = struct {
	sync.Mutex
	*rand.Rand
}{Rand: rand.New(rand.NewSource(time.Now().UnixNano()))}

// backoff returns the delay before attempt n (0-based first retry):
// BaseDelay·2ⁿ capped at MaxDelay, with equal-jitter so that concurrent
// retriers spread out instead of stampeding in lockstep.
func (p *RetryPolicy) backoff(n int) time.Duration {
	d := p.baseDelay() << uint(n)
	if max := p.maxDelay(); d > max || d <= 0 {
		d = max
	}
	jitterRand.Lock()
	f := jitterRand.Float64()
	jitterRand.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// Jitter spreads a polling delay: it returns a uniformly random duration in
// [d, 3d/2).  Pollers sleeping Jitter(minPoll) instead of exactly minPoll
// desynchronize — a thousand sweep watchers started by one campaign submit
// would otherwise phase-lock into periodic request bursts against a single
// container.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	jitterRand.Lock()
	f := jitterRand.Float64()
	jitterRand.Unlock()
	return d + time.Duration(f*float64(d)/2)
}

// idempotent reports whether the method may be replayed unconditionally.
func idempotent(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodOptions, http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

// replayable reports whether a failed attempt of req may be retried at all.
func replayable(req *http.Request) bool {
	if req.Body == nil || req.Body == http.NoBody {
		return true
	}
	return req.GetBody != nil
}

// RetryAfter parses the Retry-After header of a response (delay-seconds or
// HTTP-date form), returning 0 when absent or malformed.
func RetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// retryStatus reports whether a status code signals a transient condition
// worth retrying for a request of the given method.  503/429 are the server
// explicitly refusing to act, safe to replay whenever the body can be
// rewound; 502/504 come from a gateway whose backend replica failed
// mid-request — the backend may or may not have acted, so only idempotent
// methods are replayed.
func retryStatus(code int, method string) bool {
	switch code {
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		return true
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return idempotent(method)
	}
	return false
}

// Do performs req through client, retrying transient failures per the
// policy.  The returned response, if any, is the last attempt's and its
// body is open; earlier attempts' bodies are drained so their keep-alive
// connections return to the pool.
//
// Every attempt carries the same X-Request-ID: an ID already stamped on the
// request or carried by its context is reused, otherwise one is generated
// before the first attempt.  Retries are therefore correlatable — the server
// log shows N requests with one ID, not N unrelated requests.
func (p *RetryPolicy) Do(client *http.Client, req *http.Request) (*http.Response, error) {
	if client == nil {
		client = SharedClient
	}
	if req.Header.Get(obs.RequestIDHeader) == "" {
		id, ok := obs.RequestIDFrom(req.Context())
		if !ok {
			id = obs.NewRequestID()
		}
		req.Header.Set(obs.RequestIDHeader, id)
	}
	attempts := p.maxAttempts()
	canReplay := replayable(req)
	for attempt := 0; ; attempt++ {
		r := req
		if attempt > 0 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			r = req.Clone(req.Context())
			r.Body = body
		}
		resp, err := client.Do(r)
		if err == nil && !retryStatus(resp.StatusCode, req.Method) {
			return resp, nil
		}

		last := attempt+1 >= attempts
		if err != nil {
			// A connection-level failure: replay only when it cannot
			// duplicate a non-idempotent effect, and never race a dead
			// context.
			if last || req.Context().Err() != nil || !(idempotent(req.Method) || canReplay) {
				return nil, err
			}
		} else {
			// Transient status (503/429, or 502/504 on idempotent methods):
			// replaying is safe whenever the body can be rewound.
			if last || !canReplay {
				return resp, nil
			}
			Drain(resp.Body)
		}

		delay := p.backoff(attempt)
		if resp != nil && err == nil {
			if ra := RetryAfter(resp); ra > 0 {
				if max := p.maxDelay(); ra > max {
					ra = max
				}
				delay = ra
			}
		}
		metRetryAttempts.Inc()
		metRetryBackoff.Add(delay.Seconds())
		t := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, context.Cause(req.Context())
		case <-t.C:
		}
	}
}
