package rest

import (
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// SharedTransport is the process-wide tuned HTTP transport used by every
// MathCloud component that speaks the unified REST API: the client library,
// the catalogue pinger and container-to-container file staging.  Sharing one
// transport means one connection pool, so keep-alive connections opened by
// any component are reused by all of them — the per-call price of the REST
// API (Table 1) then excludes TCP and TLS handshakes on the hot path.
var SharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	ForceAttemptHTTP2: true,
	// The workloads are many small JSON calls plus occasional large file
	// transfers against a handful of containers, so a deep per-host pool
	// pays off: bursts of concurrent workflow block invocations against
	// one container all get persistent connections.
	MaxIdleConns:          512,
	MaxIdleConnsPerHost:   64,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
	WriteBufferSize:       64 << 10,
	ReadBufferSize:        64 << 10,
}

// SharedClient is the default HTTP client over SharedTransport.  The overall
// request timeout is generous because the unified API long-polls job
// resources (?wait=...); per-request contexts bound individual calls.
var SharedClient = &http.Client{
	Transport: SharedTransport,
	Timeout:   60 * time.Second,
}

// NewHTTPClient returns an HTTP client over the shared tuned transport with
// the given overall timeout (0 = no timeout; rely on request contexts).
func NewHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Transport: SharedTransport, Timeout: timeout}
}

// copyBufSize is the size of pooled streaming buffers.  256 KiB amortises
// syscall overhead on multi-megabyte file transfers while keeping idle pool
// cost negligible.
const copyBufSize = 256 << 10

var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, copyBufSize)
		return &b
	},
}

// writerOnly hides ReaderFrom so io.CopyBuffer actually uses the pooled
// buffer instead of delegating to dst's own (allocating) fast path.
type writerOnly struct{ io.Writer }

// Copy streams src into dst through a pooled fixed-size buffer, so the heap
// cost of a transfer is O(buffer), not O(file size).  It is the streaming
// primitive of the file plane: container staging, file publishing and client
// downloads all go through it.
func Copy(dst io.Writer, src io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	n, err := io.CopyBuffer(writerOnly{dst}, src, *bp)
	copyBufPool.Put(bp)
	return n, err
}
