// Package rest provides the HTTP plumbing shared by all MathCloud server
// components: JSON request/response encoding, mapping of platform errors to
// HTTP status codes, and small routing helpers.  It exists so that the
// container, the catalogue and the workflow management service expose a
// uniform RESTful surface, which is the central argument of the paper.
package rest

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mathcloud/internal/core"
)

// MaxBodyBytes bounds the size of JSON request bodies.  Large data must be
// passed through file resources, as the unified API prescribes.
const MaxBodyBytes = 16 << 20

// ErrorBody is the JSON error representation returned by all services.
type ErrorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// WriteJSON encodes v as JSON with the given status code.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing more can be done but log.
		log.Printf("rest: encode response: %v", err)
	}
}

// ETagMatch reports whether an If-None-Match header value matches the given
// entity tag.  Weak comparison is used (the W/ prefix is ignored), and the
// wildcard "*" matches any representation, per RFC 9110 §13.1.2.
func ETagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == strings.TrimPrefix(etag, "W/") {
			return true
		}
	}
	return false
}

// ServeJSONBytes writes a precomputed JSON representation with its entity
// tag, answering conditional requests (If-None-Match) with 304 Not Modified.
// Serving immutable bytes skips the per-request encoding of WriteJSON, and
// the 304 path skips the body transfer entirely — the HTTP-native caching
// the REST style prescribes for stable resources such as service
// descriptions.
func ServeJSONBytes(w http.ResponseWriter, r *http.Request, etag string, body []byte) {
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	if ETagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(body)
	}
}

// WriteError maps a platform error onto an HTTP status and writes the JSON
// error body.  Unknown errors become 500.  Transient conditions
// (core.UnavailableError) additionally advertise their retry hint through
// the Retry-After header, which the client retry policy honours.
func WriteError(w http.ResponseWriter, err error) {
	status := StatusOf(err)
	var unavail *core.UnavailableError
	if asErrType(err, &unavail) && unavail.RetryAfter > 0 {
		secs := int(math.Ceil(unavail.RetryAfter.Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	WriteJSON(w, status, ErrorBody{Error: err.Error(), Status: status})
}

// StatusOf returns the HTTP status code a platform error maps to.
func StatusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case core.IsNotFound(err):
		return http.StatusNotFound
	case isType[*core.BadRequestError](err):
		return http.StatusBadRequest
	case isType[*core.ConflictError](err):
		return http.StatusConflict
	case isType[*core.ForbiddenError](err):
		return http.StatusForbidden
	case isType[*core.UnavailableError](err):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func isType[T error](err error) bool {
	var t T
	return asErrType(err, &t)
}

// asErrType walks the Unwrap chain looking for an error of type T.
func asErrType[T error](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ReadJSON decodes the request body into v, enforcing the body size limit
// and rejecting trailing garbage.
func ReadJSON(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		return core.ErrBadRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return core.ErrBadRequest("trailing data after JSON body")
	}
	return nil
}

// WaitMaxHeader advertises the server's long-poll/idle-stream ceiling
// (Options.MaxWaitWindow) on blocking-GET and SSE responses, as a Go
// duration string.  Clients shrink their requested windows to it instead
// of asking for waits the server will silently clamp.
const WaitMaxHeader = "Wait-Max"

// ParseWait extracts the UWS-style blocking-GET window from the ?wait=
// query parameter.  Absent means "no wait" (ok=false, no error); present
// but unparseable or non-positive is a client error — previously such
// values were silently ignored, so a caller that thought it long-polled
// got an instant poll storm instead.
func ParseWait(r *http.Request) (d time.Duration, ok bool, err error) {
	s := r.URL.Query().Get("wait")
	if s == "" {
		return 0, false, nil
	}
	d, perr := time.ParseDuration(s)
	if perr != nil || d <= 0 {
		return 0, false, core.ErrBadRequest(
			"invalid wait parameter %q: want a positive duration such as 10s", s)
	}
	return d, true, nil
}

// ShiftPath splits the first path segment off p ("/a/b/c" → "a", "/b/c").
// It is the routing primitive used by the handlers, which keeps the
// resource hierarchy of the unified API explicit in code.
func ShiftPath(p string) (head, tail string) {
	p = strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i:]
	}
	return p, "/"
}

// WantsHTML reports whether the client prefers an HTML representation
// (a web browser), which triggers the container's auto-generated web UI.
func WantsHTML(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	htmlPos := strings.Index(accept, "text/html")
	if htmlPos < 0 {
		return false
	}
	jsonPos := strings.Index(accept, "application/json")
	return jsonPos < 0 || htmlPos < jsonPos
}

// MethodNotAllowed writes a 405 with the allowed methods advertised.
func MethodNotAllowed(w http.ResponseWriter, allowed ...string) {
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	WriteJSON(w, http.StatusMethodNotAllowed, ErrorBody{
		Error:  fmt.Sprintf("method not allowed; allowed: %s", strings.Join(allowed, ", ")),
		Status: http.StatusMethodNotAllowed,
	})
}

// Logging wraps a handler with one-line request logging.
func Logging(logger *log.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.Printf("%s %s -> %d", r.Method, r.URL.Path, rec.status)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the wrapped writer so streaming responses (SSE) keep
// working through the logging middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Drain reads and discards the remainder of a response body so the
// underlying connection can be reused, then closes it.
func Drain(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, MaxBodyBytes))
	_ = body.Close()
}
