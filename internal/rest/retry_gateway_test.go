package rest_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mathcloud/internal/rest"
)

// Gateway status semantics (DESIGN.md §5h): 502/504 mean a routing tier
// could not reach its backend replica.  The backend may or may not have
// executed the request, so only idempotent methods are replayed.

func gatewayFlake(t *testing.T, failStatus, failures int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failures) {
			w.WriteHeader(failStatus)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetryReplays502And504ForIdempotentMethods(t *testing.T) {
	policy := &rest.RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 2}
	for _, status := range []int{http.StatusBadGateway, http.StatusGatewayTimeout} {
		for _, method := range []string{http.MethodGet, http.MethodDelete} {
			srv, calls := gatewayFlake(t, status, 2)
			req, _ := http.NewRequest(method, srv.URL, nil)
			resp, err := policy.Do(srv.Client(), req)
			if err != nil {
				t.Fatalf("%s after %d: %v", method, status, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d after retries, want 200", method, resp.StatusCode)
			}
			if n := calls.Load(); n != 3 {
				t.Fatalf("%s against %d: %d attempts, want 3", method, status, n)
			}
		}
	}
}

func TestRetryDoesNotReplay502ForNonIdempotentMethods(t *testing.T) {
	policy := &rest.RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 2}
	for _, status := range []int{http.StatusBadGateway, http.StatusGatewayTimeout} {
		srv, calls := gatewayFlake(t, status, 2)
		// The body is replayable (GetBody set), so a 503 WOULD retry; the
		// gateway statuses must not, because the dead replica may already
		// have executed the submission.
		req, _ := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader([]byte(`{"a":1}`)))
		resp, err := policy.Do(srv.Client(), req)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Fatalf("POST: status %d, want the %d passed through", resp.StatusCode, status)
		}
		if n := calls.Load(); n != 1 {
			t.Fatalf("POST against %d: %d attempts, want 1", status, n)
		}
	}
}

func TestRetryStillReplays503ForReplayablePost(t *testing.T) {
	policy := &rest.RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 2}
	srv, calls := gatewayFlake(t, http.StatusServiceUnavailable, 1)
	req, _ := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader([]byte(`{"a":1}`)))
	resp, err := policy.Do(srv.Client(), req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: status %d, want 200", resp.StatusCode)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("POST against 503: %d attempts, want 2", n)
	}
}
