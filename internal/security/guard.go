package security

import (
	"fmt"
	"net/http"
	"sync"

	"mathcloud/internal/core"
)

// ActForHeader carries the delegated user identity on proxied requests: a
// trusted service (typically the workflow management service) sets it to
// the identity of the user on whose behalf it invokes another service.
const ActForHeader = core.ActForHeader

// Policy is the per-service access control configuration: allow and deny
// lists of identities, plus the proxy list of services trusted to act on
// behalf of users.
type Policy struct {
	// Allow lists identities granted access.  Empty means everyone
	// (subject to Deny).  The wildcard "*" is allowed explicitly.
	Allow []string `json:"allow,omitempty"`
	// Deny lists identities refused access; deny wins over allow.
	Deny []string `json:"deny,omitempty"`
	// Proxies lists identities of services trusted to invoke this
	// service on behalf of users.
	Proxies []string `json:"proxies,omitempty"`
}

func contains(list []string, id string) bool {
	for _, entry := range list {
		if entry == id || entry == "*" {
			return true
		}
	}
	return false
}

// Guard is the container-facing security mechanism: an authenticator
// chain plus per-service policies.  It implements container.Guard.
type Guard struct {
	// Authenticators are tried in order; the first one whose credential
	// type is present decides.
	Authenticators []Authenticator
	// AllowAnonymous, when true, lets requests without any credentials
	// through with an empty identity (still subject to policies).
	AllowAnonymous bool

	mu       sync.RWMutex
	policies map[string]*Policy
	fallback *Policy
}

// NewGuard builds a guard with the given authenticator chain.
func NewGuard(auth ...Authenticator) *Guard {
	return &Guard{Authenticators: auth, policies: make(map[string]*Policy)}
}

// SetPolicy installs the access policy of one service.
func (g *Guard) SetPolicy(service string, p Policy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.policies[service] = &p
}

// SetDefaultPolicy installs the policy applied to services without an
// explicit one.
func (g *Guard) SetDefaultPolicy(p Policy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fallback = &p
}

func (g *Guard) policy(service string) *Policy {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if p, ok := g.policies[service]; ok {
		return p
	}
	return g.fallback
}

// Authenticate implements container.Guard: it resolves the caller identity
// through the authenticator chain and captures a delegation request from
// the Act-For header.  Whether the delegation is honoured is decided per
// service in Authorize.
func (g *Guard) Authenticate(r *http.Request) (core.Principal, error) {
	var p core.Principal
	for _, a := range g.Authenticators {
		identity, ok, err := a.Authenticate(r)
		if err != nil {
			return core.Principal{}, err
		}
		if ok {
			p.ID = identity
			break
		}
	}
	if p.ID == "" && !g.AllowAnonymous {
		return core.Principal{}, fmt.Errorf("security: no acceptable credentials")
	}
	if actFor := r.Header.Get(ActForHeader); actFor != "" {
		if p.ID == "" {
			return core.Principal{}, fmt.Errorf("security: anonymous delegation is not allowed")
		}
		p.OnBehalfOf = actFor
	}
	return p, nil
}

// Authorize implements container.Guard: deny wins, then the allow list is
// consulted, and proxied requests additionally require the caller to be on
// the service's proxy list.
func (g *Guard) Authorize(p core.Principal, service string) error {
	pol := g.policy(service)
	if pol == nil {
		if p.OnBehalfOf != "" {
			return core.ErrForbidden("service %q does not accept proxied requests", service)
		}
		return nil
	}
	if p.OnBehalfOf != "" {
		if !contains(pol.Proxies, p.ID) {
			return core.ErrForbidden(
				"%s is not trusted to act on behalf of users for service %q", p.ID, service)
		}
	}
	effective := p.Effective()
	if contains(pol.Deny, effective) {
		return core.ErrForbidden("%s is denied access to service %q", effective, service)
	}
	if len(pol.Allow) > 0 && !contains(pol.Allow, effective) {
		return core.ErrForbidden("%s is not allowed to access service %q", effective, service)
	}
	return nil
}
