// Package security implements the common security mechanism of the
// MathCloud platform (the paper's Fig. 3): authentication of services via
// TLS server certificates, authentication of clients via X.509 client
// certificates or a federated web-identity provider (the paper uses the
// Loginza service over OpenID), authorization via per-service allow and
// deny lists, and a limited delegation mechanism via proxy lists that let
// trusted services — typically the workflow service — act on behalf of
// users.
package security

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CA is a certificate authority used to issue the platform's server and
// client certificates.  Real deployments would use an external PKI; the CA
// here makes the full certificate path — issuance, TLS handshake,
// DN-based identity — exercisable in tests and experiments.
type CA struct {
	// Cert is the self-signed root certificate.
	Cert *x509.Certificate
	key  *ecdsa.PrivateKey
	// Pool contains the root, ready for tls.Config.RootCAs/ClientCAs.
	Pool *x509.CertPool

	serial int64
}

// NewCA creates a fresh certificate authority with the given name.
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("security: ca key: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"MathCloud"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("security: ca cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("security: ca parse: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &CA{Cert: cert, key: key, Pool: pool, serial: 1}, nil
}

func (ca *CA) issue(tpl *x509.Certificate) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("security: issue key: %w", err)
	}
	ca.serial++
	tpl.SerialNumber = big.NewInt(ca.serial)
	tpl.NotBefore = time.Now().Add(-time.Hour)
	tpl.NotAfter = time.Now().Add(365 * 24 * time.Hour)
	der, err := x509.CreateCertificate(rand.Reader, tpl, ca.Cert, &key.PublicKey, ca.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("security: issue cert: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("security: issue parse: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der},
		PrivateKey:  key,
		Leaf:        leaf,
	}, nil
}

// IssueClient issues a client certificate with the given common name.  The
// resulting platform identity is CertIdentity(commonName).
func (ca *CA) IssueClient(commonName string) (tls.Certificate, error) {
	return ca.issue(&x509.Certificate{
		Subject:     pkix.Name{CommonName: commonName, Organization: []string{"MathCloud"}},
		KeyUsage:    x509.KeyUsageDigitalSignature,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	})
}

// IssueServer issues a server certificate for the given hosts (DNS names
// or IP addresses).
func (ca *CA) IssueServer(commonName string, hosts ...string) (tls.Certificate, error) {
	tpl := &x509.Certificate{
		Subject:     pkix.Name{CommonName: commonName, Organization: []string{"MathCloud"}},
		KeyUsage:    x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tpl.IPAddresses = append(tpl.IPAddresses, ip)
		} else {
			tpl.DNSNames = append(tpl.DNSNames, h)
		}
	}
	return ca.issue(tpl)
}

// ServerTLSConfig returns a TLS configuration for a MathCloud service:
// server certificate presented, client certificates verified against the
// CA when offered (clients may instead authenticate with a web identity
// token, so certificates are requested but not required).
func (ca *CA) ServerTLSConfig(serverCert tls.Certificate) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{serverCert},
		ClientCAs:    ca.Pool,
		ClientAuth:   tls.VerifyClientCertIfGiven,
		MinVersion:   tls.VersionTLS12,
	}
}

// ClientTLSConfig returns a TLS configuration for a client authenticating
// with the given certificate (pass a zero tls.Certificate for anonymous
// TLS).
func (ca *CA) ClientTLSConfig(clientCert *tls.Certificate) *tls.Config {
	cfg := &tls.Config{RootCAs: ca.Pool, MinVersion: tls.VersionTLS12}
	if clientCert != nil {
		cfg.Certificates = []tls.Certificate{*clientCert}
	}
	return cfg
}

// CertIdentity is the platform identity derived from a certificate common
// name.
func CertIdentity(commonName string) string { return "cn:" + commonName }
