package security_test

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/security"
)

func TestWebIdentityTokenRoundTrip(t *testing.T) {
	p, err := security.NewWebIdentityProvider(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := p.Login("https://id.example/alice")
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	id, err := p.Verify(tok)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if id != "openid:https://id.example/alice" {
		t.Errorf("identity = %q", id)
	}
}

func TestTokenTamperingDetected(t *testing.T) {
	p, _ := security.NewWebIdentityProvider(time.Hour)
	tok, _ := p.Login("https://id.example/alice")
	bad := tok[:len(tok)-2] + "zz"
	if _, err := p.Verify(bad); err == nil {
		t.Error("tampered token verified")
	}
}

func TestTokenExpiry(t *testing.T) {
	p, _ := security.NewWebIdentityProvider(time.Nanosecond)
	tok, _ := p.Login("https://id.example/alice")
	time.Sleep(2 * time.Second) // expiry granularity is one second
	if _, err := p.Verify(tok); err == nil {
		t.Error("expired token verified")
	}
}

func TestTokenRevocation(t *testing.T) {
	p, _ := security.NewWebIdentityProvider(time.Hour)
	tok, _ := p.Login("https://id.example/alice")
	p.Revoke(tok)
	if _, err := p.Verify(tok); err == nil {
		t.Error("revoked token verified")
	}
}

func TestTokensFromOtherProviderRejected(t *testing.T) {
	p1, _ := security.NewWebIdentityProvider(time.Hour)
	p2, _ := security.NewWebIdentityProvider(time.Hour)
	tok, _ := p1.Login("https://id.example/alice")
	if _, err := p2.Verify(tok); err == nil {
		t.Error("foreign token verified")
	}
}

func TestGuardAllowDenyLists(t *testing.T) {
	p, _ := security.NewWebIdentityProvider(time.Hour)
	g := security.NewGuard(security.TokenAuthenticator{Provider: p})
	g.SetPolicy("solver", security.Policy{
		Allow: []string{"openid:alice", "cn:Bob"},
		Deny:  []string{"cn:Bob"},
	})

	cases := []struct {
		id   string
		want bool // authorized?
	}{
		{"openid:alice", true},
		{"cn:Bob", false},     // deny wins over allow
		{"openid:eve", false}, // not on allow list
	}
	for _, tc := range cases {
		err := g.Authorize(core.Principal{ID: tc.id}, "solver")
		if (err == nil) != tc.want {
			t.Errorf("Authorize(%s) err=%v, want authorized=%v", tc.id, err, tc.want)
		}
	}
	// A service without a policy is open.
	if err := g.Authorize(core.Principal{ID: "openid:eve"}, "open-service"); err != nil {
		t.Errorf("open service denied: %v", err)
	}
}

func TestGuardDelegationViaProxyList(t *testing.T) {
	g := security.NewGuard()
	g.AllowAnonymous = false
	g.SetPolicy("solver", security.Policy{
		Allow:   []string{"openid:alice"},
		Proxies: []string{"cn:wms.mathcloud"},
	})

	// The WMS acting for alice is accepted.
	p := core.Principal{ID: "cn:wms.mathcloud", OnBehalfOf: "openid:alice"}
	if err := g.Authorize(p, "solver"); err != nil {
		t.Errorf("trusted proxy rejected: %v", err)
	}
	// An untrusted service acting for alice is rejected.
	p = core.Principal{ID: "cn:rogue", OnBehalfOf: "openid:alice"}
	if err := g.Authorize(p, "solver"); err == nil {
		t.Error("untrusted proxy accepted")
	}
	// The trusted proxy cannot elevate a user who is not allowed.
	p = core.Principal{ID: "cn:wms.mathcloud", OnBehalfOf: "openid:eve"}
	if err := g.Authorize(p, "solver"); err == nil {
		t.Error("proxying bypassed the allow list")
	}
}

func TestGuardRejectsMissingCredentials(t *testing.T) {
	p, _ := security.NewWebIdentityProvider(time.Hour)
	g := security.NewGuard(security.TokenAuthenticator{Provider: p})
	r := httptest.NewRequest(http.MethodGet, "/services/x", nil)
	if _, err := g.Authenticate(r); err == nil {
		t.Error("anonymous request authenticated")
	}
	g.AllowAnonymous = true
	if _, err := g.Authenticate(r); err != nil {
		t.Errorf("anonymous request rejected with AllowAnonymous: %v", err)
	}
}

// TestSecuredContainerEndToEnd exercises the full Fig. 3 mechanism over
// real TLS: server certificate, client certificate identity, bearer-token
// identity, allow lists and the 401/403 paths.
func TestSecuredContainerEndToEnd(t *testing.T) {
	ca, err := security.NewCA("MathCloud Test CA")
	if err != nil {
		t.Fatal(err)
	}
	provider, _ := security.NewWebIdentityProvider(time.Hour)
	guard := security.NewGuard(
		security.CertAuthenticator{},
		security.TokenAuthenticator{Provider: provider},
	)
	guard.SetPolicy("add", security.Policy{
		Allow: []string{security.CertIdentity("alice"), security.OpenIDIdentity("bob@id.example")},
	})

	adapter.RegisterFunc("sec.add", func(ctx context.Context, in core.Values) (core.Values, error) {
		return core.Values{"sum": in["a"].(float64) + in["b"].(float64)}, nil
	})
	c, err := container.New(container.Options{
		Guard:  guard,
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "add",
			Inputs:  []core.Param{{Name: "a"}, {Name: "b"}},
			Outputs: []core.Param{{Name: "sum"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "native", Config: json.RawMessage(`{"function":"sec.add"}`),
		},
	}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewUnstartedServer(c.Handler())
	serverCert, err := ca.IssueServer("everest.test", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv.TLS = ca.ServerTLSConfig(serverCert)
	srv.StartTLS()
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)

	call := func(cl *client.Client) error {
		_, err := cl.Service(srv.URL+"/services/add").Call(
			context.Background(), core.Values{"a": 1.0, "b": 2.0})
		return err
	}
	httpFor := func(cert *tls.Certificate) *http.Client {
		return &http.Client{
			Timeout:   10 * time.Second,
			Transport: &http.Transport{TLSClientConfig: ca.ClientTLSConfig(cert)},
		}
	}

	t.Run("client certificate accepted", func(t *testing.T) {
		aliceCert, err := ca.IssueClient("alice")
		if err != nil {
			t.Fatal(err)
		}
		if err := call(&client.Client{HTTP: httpFor(&aliceCert)}); err != nil {
			t.Errorf("alice (cert) rejected: %v", err)
		}
	})

	t.Run("bearer token accepted", func(t *testing.T) {
		tok, err := provider.Login("bob@id.example")
		if err != nil {
			t.Fatal(err)
		}
		if err := call(&client.Client{HTTP: httpFor(nil), Token: tok}); err != nil {
			t.Errorf("bob (token) rejected: %v", err)
		}
	})

	t.Run("no credentials is 401", func(t *testing.T) {
		err := call(&client.Client{HTTP: httpFor(nil)})
		var api *client.APIError
		if !asAPI(err, &api) || api.Status != http.StatusUnauthorized {
			t.Errorf("err = %v, want 401", err)
		}
	})

	t.Run("unlisted identity is 403", func(t *testing.T) {
		eveCert, err := ca.IssueClient("eve")
		if err != nil {
			t.Fatal(err)
		}
		err = call(&client.Client{HTTP: httpFor(&eveCert)})
		var api *client.APIError
		if !asAPI(err, &api) || api.Status != http.StatusForbidden {
			t.Errorf("err = %v, want 403", err)
		}
	})

	t.Run("job owner records identity", func(t *testing.T) {
		aliceCert, _ := ca.IssueClient("alice")
		cl := &client.Client{HTTP: httpFor(&aliceCert)}
		job, err := cl.Service(srv.URL+"/services/add").Submit(
			context.Background(), core.Values{"a": 1.0, "b": 2.0}, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if job.Owner != security.CertIdentity("alice") {
			t.Errorf("owner = %q, want cn:alice", job.Owner)
		}
	})
}

func asAPI(err error, target **client.APIError) bool {
	for err != nil {
		if e, ok := err.(*client.APIError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
