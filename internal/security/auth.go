package security

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Authenticator is one client authentication mechanism.  Implementations
// return ok=false when the request carries no credentials of their type
// (so the next mechanism in the chain is tried) and an error when it
// carries invalid ones.
type Authenticator interface {
	Authenticate(r *http.Request) (identity string, ok bool, err error)
}

// CertAuthenticator authenticates clients by X.509 client certificate: the
// first mechanism of the paper's security section.  The TLS layer has
// already verified the chain against the platform CA; the authenticator
// only derives the identity from the certificate's distinguished name.
type CertAuthenticator struct{}

// Authenticate implements Authenticator.
func (CertAuthenticator) Authenticate(r *http.Request) (string, bool, error) {
	if r.TLS == nil || len(r.TLS.PeerCertificates) == 0 {
		return "", false, nil
	}
	cn := r.TLS.PeerCertificates[0].Subject.CommonName
	if cn == "" {
		return "", false, fmt.Errorf("security: client certificate without common name")
	}
	return CertIdentity(cn), true, nil
}

// WebIdentityProvider simulates the Loginza-style federated login service:
// users authenticate with an external identity provider (Google, any
// OpenID provider, ...) and receive a signed bearer token that MathCloud
// services accept.  Tokens are HMAC-signed and carry the OpenID identifier
// and an expiry.
type WebIdentityProvider struct {
	secret []byte
	ttl    time.Duration

	mu      sync.Mutex
	revoked map[string]bool
}

// NewWebIdentityProvider creates a provider with a random signing secret
// and the given token lifetime (0 means 24 h).
func NewWebIdentityProvider(ttl time.Duration) (*WebIdentityProvider, error) {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("security: provider secret: %w", err)
	}
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	return &WebIdentityProvider{secret: secret, ttl: ttl, revoked: make(map[string]bool)}, nil
}

// OpenIDIdentity is the platform identity for a federated web identity.
func OpenIDIdentity(openID string) string { return "openid:" + openID }

// Login issues a bearer token for the given OpenID identifier.  In the
// real platform this happens after the identity-provider redirect dance;
// the simulation starts at the point where the provider has vouched for
// the identifier.
func (p *WebIdentityProvider) Login(openID string) (string, error) {
	if strings.TrimSpace(openID) == "" {
		return "", fmt.Errorf("security: empty OpenID identifier")
	}
	if strings.ContainsAny(openID, "|") {
		return "", fmt.Errorf("security: OpenID identifier must not contain '|'")
	}
	expires := time.Now().Add(p.ttl).Unix()
	payload := fmt.Sprintf("%s|%d", openID, expires)
	sig := p.sign(payload)
	token := base64.RawURLEncoding.EncodeToString([]byte(payload + "|" + sig))
	return token, nil
}

// Revoke invalidates a previously issued token.
func (p *WebIdentityProvider) Revoke(token string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.revoked[token] = true
}

// Verify checks a token and returns the platform identity it vouches for.
func (p *WebIdentityProvider) Verify(token string) (string, error) {
	p.mu.Lock()
	revoked := p.revoked[token]
	p.mu.Unlock()
	if revoked {
		return "", fmt.Errorf("security: token revoked")
	}
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return "", fmt.Errorf("security: malformed token")
	}
	parts := strings.Split(string(raw), "|")
	if len(parts) != 3 {
		return "", fmt.Errorf("security: malformed token")
	}
	openID, expiresStr, sig := parts[0], parts[1], parts[2]
	payload := openID + "|" + expiresStr
	if !hmac.Equal([]byte(p.sign(payload)), []byte(sig)) {
		return "", fmt.Errorf("security: invalid token signature")
	}
	var expires int64
	if _, err := fmt.Sscanf(expiresStr, "%d", &expires); err != nil {
		return "", fmt.Errorf("security: malformed token expiry")
	}
	if time.Now().Unix() > expires {
		return "", fmt.Errorf("security: token expired")
	}
	return OpenIDIdentity(openID), nil
}

func (p *WebIdentityProvider) sign(payload string) string {
	mac := hmac.New(sha256.New, p.secret)
	mac.Write([]byte(payload))
	return base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}

// TokenAuthenticator authenticates bearer tokens issued by a
// WebIdentityProvider: the second client-authentication mechanism, which
// is convenient for users who do not have a certificate.
type TokenAuthenticator struct {
	Provider *WebIdentityProvider
}

// Authenticate implements Authenticator.
func (a TokenAuthenticator) Authenticate(r *http.Request) (string, bool, error) {
	header := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(header, prefix) {
		return "", false, nil
	}
	identity, err := a.Provider.Verify(strings.TrimPrefix(header, prefix))
	if err != nil {
		return "", false, err
	}
	return identity, true, nil
}
