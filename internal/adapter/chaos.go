package adapter

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"mathcloud/internal/core"
)

// ChaosConfig is the internal service configuration of the Chaos adapter.
type ChaosConfig struct {
	// Mode selects the default failure behaviour: "ok" (succeed), "fail"
	// (return an error), "panic" (panic in the worker), "hang" (block
	// until cancelled) or "sleep" (sleep Delay, then succeed).
	Mode string `json:"mode,omitempty"`
	// Delay is the sleep duration of the "sleep" mode.
	Delay core.Duration `json:"delay,omitempty"`
	// Message customises the error or panic text.
	Message string `json:"message,omitempty"`
}

// ChaosAdapter is a fault-injection adapter used by the robustness test
// suites: it fails, panics, hangs or stalls on demand, so tests can prove
// that every job reaches a terminal state no matter how its adapter
// misbehaves.  A request may override the configured mode through the
// "mode" input parameter, which lets one deployed chaos service exercise
// every failure path.
type ChaosAdapter struct {
	cfg ChaosConfig
}

// NewChaosAdapter builds a ChaosAdapter from its JSON configuration.
func NewChaosAdapter(config json.RawMessage) (Interface, error) {
	var cfg ChaosConfig
	if len(config) > 0 {
		if err := json.Unmarshal(config, &cfg); err != nil {
			return nil, fmt.Errorf("chaos adapter: %w", err)
		}
	}
	switch cfg.Mode {
	case "", "ok", "fail", "panic", "hang", "sleep":
	default:
		return nil, fmt.Errorf("chaos adapter: unknown mode %q", cfg.Mode)
	}
	return &ChaosAdapter{cfg: cfg}, nil
}

// Kind implements Interface.
func (a *ChaosAdapter) Kind() string { return "chaos" }

// Invoke implements Interface.
func (a *ChaosAdapter) Invoke(ctx context.Context, req *Request) (*Result, error) {
	mode := a.cfg.Mode
	if m, ok := req.Inputs["mode"].(string); ok && m != "" {
		mode = m
	}
	message := a.cfg.Message
	if message == "" {
		message = "chaos adapter: injected failure"
	}
	switch mode {
	case "fail":
		return nil, errors.New(message)
	case "panic":
		panic(message)
	case "hang":
		<-ctx.Done()
		return nil, ctx.Err()
	case "sleep":
		t := time.NewTimer(a.cfg.Delay.Std())
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	return &Result{Outputs: core.Values{"ok": true}}, nil
}
