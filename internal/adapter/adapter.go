// Package adapter defines the pluggable adapter interface of the Everest
// service container and its universal adapter implementations.
//
// Adapters are the components that actually process service requests.  The
// container converts an accepted request into a job, stages file parameters
// into a scratch directory and hands the job to the adapter named in the
// service configuration.  The paper ships four universal adapters: Command
// (run an external program), Java (invoke a class in-process — here Native,
// a registered Go function), Cluster (submit a TORQUE batch job) and Grid
// (submit a gLite grid job).  This package holds the interface, the
// registry, and the infrastructure-free adapters; the Cluster and Grid
// adapters live next to their simulators in internal/torque and
// internal/grid.
package adapter

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"mathcloud/internal/core"
)

// Request carries one job into an adapter.
type Request struct {
	// JobID identifies the job, for logging and cancellation bookkeeping.
	JobID string
	// Service is the name of the service the job belongs to.
	Service string
	// Owner is the effective identity that submitted the job ("" when
	// the container runs unsecured).  Composite adapters use it to act
	// on the user's behalf when calling downstream services.
	Owner string
	// Inputs holds the request parameter values.  File-reference values
	// have been resolved: for each such parameter Files maps the
	// parameter name to a local path with the staged content.
	Inputs core.Values
	// Files maps file-valued input parameter names to staged local paths.
	Files map[string]string
	// WorkDir is a scratch directory private to the job.  Adapters may
	// create output files here; paths returned in Result.Files must be
	// inside it.
	WorkDir string
	// Progress, when non-nil, lets long-running adapters report
	// human-readable progress lines that the container attaches to the
	// job resource.
	Progress func(message string)
	// SetBlockState, when non-nil, lets composite (workflow) adapters
	// publish per-block execution states through the job resource, which
	// is how the workflow editor paints block status during a run.
	SetBlockState func(block string, state core.JobState)
}

// Result carries the outputs of a successfully processed job.
type Result struct {
	// Outputs holds inline output parameter values.
	Outputs core.Values
	// Files maps output parameter names to local paths whose content the
	// container publishes as file resources, replacing the parameter
	// value with a file reference.
	Files map[string]string
}

// Interface is the standard adapter contract: the container passes request
// parameters in, monitors the job and receives results.
type Interface interface {
	// Kind returns the adapter type name ("command", "native", ...).
	Kind() string
	// Invoke processes one job.  It must honour ctx cancellation, which
	// the container uses to implement the DELETE (cancel) method of the
	// job resource.
	Invoke(ctx context.Context, req *Request) (*Result, error)
}

// BatchItem is the outcome of one request of a batched invocation: exactly
// one of Result and Err is set.  A failed item fails only its own job; the
// rest of the batch is unaffected.
type BatchItem struct {
	Result *Result
	Err    error
}

// BatchInterface is the micro-batching extension of the adapter contract:
// adapters that can amortise per-invocation overhead — process start-up,
// solver warm-up, model load — across several requests of one service
// implement it in addition to Interface.  The container's worker pool
// drains up to its configured batch size of queued jobs of a service that
// declares "batch": true into a single InvokeBatch call.
//
// InvokeBatch must return one BatchItem per request, in request order; a
// non-nil error return instead fails the whole batch (every job).  It must
// honour ctx cancellation, which covers the batch as a whole — individual
// job cancellation is handled by the container, which discards that job's
// item on return.
type BatchInterface interface {
	InvokeBatch(ctx context.Context, reqs []*Request) ([]BatchItem, error)
}

// WorkDirCapability is optionally implemented by adapters that can report
// whether they use the per-job scratch directory.  The container creates
// (and afterwards removes) a directory per job unless the adapter reports
// it never touches one — two filesystem round trips that dominate the cost
// of short in-process computations, and exactly the overhead a wide
// campaign of small jobs pays a thousand times over.  Adapters that do not
// implement the interface are assumed to need the directory.
type WorkDirCapability interface {
	// NeedsWorkDir reports whether Invoke/InvokeBatch reads Request.WorkDir.
	NeedsWorkDir() bool
}

// Factory builds an adapter instance from the internal service
// configuration (the non-public half of a service's configuration file).
type Factory func(config json.RawMessage) (Interface, error)

// Registry maps adapter type names to factories.  A container owns one
// registry; tests may build private ones.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns a registry pre-populated with the adapters that have
// no external dependencies: command, native, script and chaos (the
// fault-injection adapter used by robustness tests).
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]Factory)}
	r.Register("command", NewCommandAdapter)
	r.Register("native", NewNativeAdapter)
	r.Register("script", NewScriptAdapter)
	r.Register("chaos", NewChaosAdapter)
	return r
}

// Register adds a factory under the given adapter type name, replacing any
// previous registration.
func (r *Registry) Register(kind string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[kind] = f
}

// New instantiates an adapter of the given kind with its configuration.
func (r *Registry) New(kind string, config json.RawMessage) (Interface, error) {
	r.mu.RLock()
	f, ok := r.factories[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("adapter: unknown adapter kind %q (have %v)", kind, r.Kinds())
	}
	a, err := f(config)
	if err != nil {
		return nil, fmt.Errorf("adapter: configure %q: %w", kind, err)
	}
	return a, nil
}

// Kinds returns the sorted registered adapter type names.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	kinds := make([]string, 0, len(r.factories))
	for k := range r.factories {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
