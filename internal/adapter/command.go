package adapter

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"mathcloud/internal/core"
)

// CommandConfig is the internal service configuration of the Command
// adapter.  It describes the command to execute and the mappings between
// service parameters and command-line arguments or external files, exactly
// as in the paper: exposing an existing application as a service reduces to
// writing this configuration, without any code.
type CommandConfig struct {
	// Command is the program to run.
	Command string `json:"command"`
	// Args are the command-line arguments.  Occurrences of {name} are
	// replaced with the string form of the input parameter, {name.path}
	// with the staged file path of a file-valued input, and {workdir}
	// with the job scratch directory.
	Args []string `json:"args,omitempty"`
	// Stdin, when non-empty, is a template (same placeholders) fed to
	// the process on standard input.
	Stdin string `json:"stdin,omitempty"`
	// Env lists extra environment entries, each a template.
	Env []string `json:"env,omitempty"`
	// InputFiles maps input parameter names to file names created in the
	// work directory before the run.  The file receives the staged file
	// content for file-valued parameters or the string form of inline
	// values; the parameter's {name.path} placeholder then resolves to
	// this file.
	InputFiles map[string]string `json:"inputFiles,omitempty"`
	// OutputFiles maps output parameter names to file names (relative to
	// the work directory) that the command produces.  They are published
	// as file resources.
	OutputFiles map[string]string `json:"outputFiles,omitempty"`
	// StdoutOutput, when non-empty, names the output parameter that
	// receives the captured standard output as a string.
	StdoutOutput string `json:"stdoutOutput,omitempty"`
	// StdoutJSON, when true, parses standard output as a JSON object and
	// uses its members as output parameters (overrides StdoutOutput).
	StdoutJSON bool `json:"stdoutJSON,omitempty"`
}

// CommandAdapter converts a service request into the execution of a
// configured command in a separate process.
type CommandAdapter struct {
	cfg CommandConfig
}

// NewCommandAdapter builds a CommandAdapter from its JSON configuration.
func NewCommandAdapter(config json.RawMessage) (Interface, error) {
	var cfg CommandConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return nil, fmt.Errorf("command adapter: %w", err)
	}
	if strings.TrimSpace(cfg.Command) == "" {
		return nil, fmt.Errorf("command adapter: empty command")
	}
	return &CommandAdapter{cfg: cfg}, nil
}

// Kind implements Interface.
func (a *CommandAdapter) Kind() string { return "command" }

// Invoke implements Interface.
func (a *CommandAdapter) Invoke(ctx context.Context, req *Request) (*Result, error) {
	// Materialize configured input files first, so that {name.path}
	// placeholders can refer to them.
	files := make(map[string]string, len(req.Files))
	for k, v := range req.Files {
		files[k] = v
	}
	for param, fileName := range a.cfg.InputFiles {
		path := filepath.Join(req.WorkDir, filepath.Clean(fileName))
		var content []byte
		if staged, ok := files[param]; ok {
			data, err := os.ReadFile(staged)
			if err != nil {
				return nil, fmt.Errorf("command adapter: read staged input %q: %w", param, err)
			}
			content = data
		} else if val, ok := req.Inputs[param]; ok {
			content = []byte(valueString(val))
		} else {
			return nil, fmt.Errorf("command adapter: inputFiles refers to unknown parameter %q", param)
		}
		if err := os.WriteFile(path, content, 0o600); err != nil {
			return nil, fmt.Errorf("command adapter: write input file for %q: %w", param, err)
		}
		files[param] = path
	}

	expand := func(tpl string) (string, error) { return expandTemplate(tpl, req, files) }

	args := make([]string, 0, len(a.cfg.Args))
	for _, tpl := range a.cfg.Args {
		arg, err := expand(tpl)
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}

	cmd := exec.CommandContext(ctx, a.cfg.Command, args...)
	cmd.Dir = req.WorkDir
	cmd.Env = os.Environ()
	for _, tpl := range a.cfg.Env {
		entry, err := expand(tpl)
		if err != nil {
			return nil, err
		}
		cmd.Env = append(cmd.Env, entry)
	}
	if a.cfg.Stdin != "" {
		stdin, err := expand(a.cfg.Stdin)
		if err != nil {
			return nil, err
		}
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr

	if req.Progress != nil {
		req.Progress(fmt.Sprintf("executing %s", a.cfg.Command))
	}
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("command adapter: %s failed: %s", a.cfg.Command, msg)
	}

	res := &Result{Outputs: core.Values{}, Files: map[string]string{}}
	switch {
	case a.cfg.StdoutJSON:
		var outs map[string]any
		if err := json.Unmarshal(stdout.Bytes(), &outs); err != nil {
			return nil, fmt.Errorf("command adapter: parse stdout as JSON object: %w", err)
		}
		for k, v := range outs {
			res.Outputs[k] = v
		}
	case a.cfg.StdoutOutput != "":
		res.Outputs[a.cfg.StdoutOutput] = stdout.String()
	}
	for param, fileName := range a.cfg.OutputFiles {
		path := filepath.Join(req.WorkDir, filepath.Clean(fileName))
		if _, err := os.Stat(path); err != nil {
			return nil, fmt.Errorf("command adapter: expected output file %q for %q: %w",
				fileName, param, err)
		}
		res.Files[param] = path
	}
	return res, nil
}

// expandTemplate substitutes {name}, {name.path} and {workdir}
// placeholders.  Literal braces are written as {{ and }}.
func expandTemplate(tpl string, req *Request, files map[string]string) (string, error) {
	var b strings.Builder
	for {
		open := strings.IndexByte(tpl, '{')
		if open < 0 {
			b.WriteString(strings.ReplaceAll(tpl, "}}", "}"))
			return b.String(), nil
		}
		if strings.HasPrefix(tpl[open:], "{{") {
			b.WriteString(strings.ReplaceAll(tpl[:open], "}}", "}"))
			b.WriteByte('{')
			tpl = tpl[open+2:]
			continue
		}
		closing := strings.IndexByte(tpl[open:], '}')
		if closing < 0 {
			b.WriteString(strings.ReplaceAll(tpl, "}}", "}"))
			return b.String(), nil
		}
		closing += open
		b.WriteString(strings.ReplaceAll(tpl[:open], "}}", "}"))
		key := tpl[open+1 : closing]
		tpl = tpl[closing+1:]
		switch {
		case key == "workdir":
			b.WriteString(req.WorkDir)
		case strings.HasSuffix(key, ".path"):
			param := strings.TrimSuffix(key, ".path")
			path, ok := files[param]
			if !ok {
				return "", fmt.Errorf("command adapter: placeholder {%s}: parameter %q has no file", key, param)
			}
			b.WriteString(path)
		default:
			val, ok := req.Inputs[key]
			if !ok {
				return "", fmt.Errorf("command adapter: placeholder {%s}: unknown parameter", key)
			}
			b.WriteString(valueString(val))
		}
	}
}

// valueString renders a parameter value for command-line or file use.
func valueString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case nil:
		return ""
	default:
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v)
		}
		return string(data)
	}
}
