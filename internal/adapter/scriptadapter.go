package adapter

import (
	"context"
	"encoding/json"
	"fmt"

	"mathcloud/internal/core"
	"mathcloud/internal/script"
)

// ScriptConfig is the internal service configuration of the Script adapter,
// which runs a custom MCScript action.  It is the platform's replacement
// for the paper's custom workflow actions written in JavaScript or Python.
type ScriptConfig struct {
	// Script is the MCScript source.  It reads inputs from `in` and
	// publishes outputs by assigning fields of `out`.
	Script string `json:"script"`
	// StepLimit optionally overrides the evaluation step budget.
	StepLimit int `json:"stepLimit,omitempty"`
}

// ScriptAdapter executes a compiled MCScript per request.
type ScriptAdapter struct {
	program   *script.Program
	stepLimit int
}

// NewScriptAdapter builds a ScriptAdapter from its JSON configuration,
// compiling the script once at deployment time so syntax errors surface
// when the service is configured, not when it is called.
func NewScriptAdapter(config json.RawMessage) (Interface, error) {
	var cfg ScriptConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return nil, fmt.Errorf("script adapter: %w", err)
	}
	prog, err := script.Parse(cfg.Script)
	if err != nil {
		return nil, fmt.Errorf("script adapter: %w", err)
	}
	limit := cfg.StepLimit
	if limit <= 0 {
		limit = script.DefaultStepLimit
	}
	return &ScriptAdapter{program: prog, stepLimit: limit}, nil
}

// Kind implements Interface.
func (a *ScriptAdapter) Kind() string { return "script" }

// Invoke implements Interface.  Script execution is CPU-bound and bounded
// by the step limit, so cancellation is checked before starting.
func (a *ScriptAdapter) Invoke(ctx context.Context, req *Request) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, _, err := a.program.RunLimited(map[string]any(req.Inputs), a.stepLimit)
	if err != nil {
		return nil, fmt.Errorf("script adapter: %w", err)
	}
	return &Result{Outputs: core.Values(out)}, nil
}
