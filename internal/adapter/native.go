package adapter

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mathcloud/internal/core"
)

// Func is the signature of an in-process computational function, the Go
// analogue of the paper's Java adapter target interface.  Implementations
// receive the request inputs and return the job outputs.
type Func func(ctx context.Context, inputs core.Values) (core.Values, error)

// RequestFunc is a file-aware in-process computational function: it
// receives the full adapter request (including staged input files and the
// scratch directory) and may return output files, which the container
// publishes as file resources.  Services that move large data — the
// paper's matrices of "hundreds of megabytes" — implement this form.
type RequestFunc func(ctx context.Context, req *Request) (*Result, error)

// nativeFuncs is the process-wide registry of invocable functions.  A
// service configuration refers to functions by name, mirroring the Java
// adapter's "name of the corresponding class".
var nativeFuncs = struct {
	sync.RWMutex
	m map[string]Func
	r map[string]RequestFunc
}{m: make(map[string]Func), r: make(map[string]RequestFunc)}

// RegisterFunc makes fn available to Native adapters under the given name.
// It replaces a previous registration with the same name, which keeps test
// packages independent.
func RegisterFunc(name string, fn Func) {
	if fn == nil {
		panic("adapter: RegisterFunc with nil function")
	}
	nativeFuncs.Lock()
	defer nativeFuncs.Unlock()
	nativeFuncs.m[name] = fn
	delete(nativeFuncs.r, name)
}

// RegisterRequestFunc makes a file-aware function available to Native
// adapters under the given name, replacing any previous registration of
// either kind.
func RegisterRequestFunc(name string, fn RequestFunc) {
	if fn == nil {
		panic("adapter: RegisterRequestFunc with nil function")
	}
	nativeFuncs.Lock()
	defer nativeFuncs.Unlock()
	nativeFuncs.r[name] = fn
	delete(nativeFuncs.m, name)
}

// LookupFunc returns the registered function with the given name.
func LookupFunc(name string) (Func, bool) {
	nativeFuncs.RLock()
	defer nativeFuncs.RUnlock()
	fn, ok := nativeFuncs.m[name]
	return fn, ok
}

// LookupRequestFunc returns the registered file-aware function with the
// given name.
func LookupRequestFunc(name string) (RequestFunc, bool) {
	nativeFuncs.RLock()
	defer nativeFuncs.RUnlock()
	fn, ok := nativeFuncs.r[name]
	return fn, ok
}

// Funcs returns the sorted names of all registered native functions.
func Funcs() []string {
	nativeFuncs.RLock()
	defer nativeFuncs.RUnlock()
	names := make([]string, 0, len(nativeFuncs.m)+len(nativeFuncs.r))
	for name := range nativeFuncs.m {
		names = append(names, name)
	}
	for name := range nativeFuncs.r {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NativeConfig is the internal service configuration of the Native adapter.
type NativeConfig struct {
	// Function names the registered Func to invoke.
	Function string `json:"function"`
	// SimulatedSlowdown, when positive, makes the adapter sleep
	// SimulatedSlowdown × t after a call that computed for t.  It
	// models a service whose backing hardware is that much slower than
	// the local substrate: sleeps overlap across concurrent jobs the
	// way work on distinct remote machines does, while local CPU work
	// serializes.  The performance experiments use it to reproduce the
	// paper's multi-node timing behaviour on a single test machine; it
	// is off (0) by default.
	SimulatedSlowdown float64 `json:"simulatedSlowdown,omitempty"`
}

// NativeAdapter performs an invocation of a registered Go function inside
// the current process, passing request parameters in the call.
type NativeAdapter struct {
	name     string
	fn       Func
	reqFn    RequestFunc
	slowdown float64
}

// NewNativeAdapter builds a NativeAdapter from its JSON configuration.
func NewNativeAdapter(config json.RawMessage) (Interface, error) {
	var cfg NativeConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return nil, fmt.Errorf("native adapter: %w", err)
	}
	if cfg.SimulatedSlowdown < 0 {
		return nil, fmt.Errorf("native adapter: negative simulatedSlowdown")
	}
	a := &NativeAdapter{name: cfg.Function, slowdown: cfg.SimulatedSlowdown}
	if fn, ok := LookupFunc(cfg.Function); ok {
		a.fn = fn
		return a, nil
	}
	if fn, ok := LookupRequestFunc(cfg.Function); ok {
		a.reqFn = fn
		return a, nil
	}
	return nil, fmt.Errorf("native adapter: function %q is not registered (have %v)",
		cfg.Function, Funcs())
}

// Kind implements Interface.
func (a *NativeAdapter) Kind() string { return "native" }

// call dispatches to whichever function form is registered.
func (a *NativeAdapter) call(ctx context.Context, req *Request) (*Result, error) {
	if a.reqFn != nil {
		return a.reqFn(ctx, req)
	}
	outputs, err := a.fn(ctx, req.Inputs)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: outputs}, nil
}

// Invoke implements Interface.
func (a *NativeAdapter) Invoke(ctx context.Context, req *Request) (*Result, error) {
	if a.slowdown <= 0 {
		res, err := a.call(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("native adapter: %s: %w", a.name, err)
		}
		return res, nil
	}
	// Simulated slowdown: measure the function's own compute and sleep
	// proportionally.  Prefer per-thread CPU time (with the goroutine
	// pinned to its thread), so concurrent jobs time-slicing one CPU do
	// not inflate each other's simulated sleeps.
	runtime.LockOSThread()
	cpu0, cpuOK := threadCPUTime()
	wall0 := time.Now()
	res, err := a.call(ctx, req)
	var compute time.Duration
	if cpu1, ok := threadCPUTime(); cpuOK && ok {
		compute = cpu1 - cpu0
	} else {
		compute = time.Since(wall0)
	}
	runtime.UnlockOSThread()
	if err != nil {
		return nil, fmt.Errorf("native adapter: %s: %w", a.name, err)
	}
	extra := time.Duration(a.slowdown * float64(compute))
	select {
	case <-time.After(extra):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return res, nil
}
