package adapter

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mathcloud/internal/core"
)

// Func is the signature of an in-process computational function, the Go
// analogue of the paper's Java adapter target interface.  Implementations
// receive the request inputs and return the job outputs.
type Func func(ctx context.Context, inputs core.Values) (core.Values, error)

// RequestFunc is a file-aware in-process computational function: it
// receives the full adapter request (including staged input files and the
// scratch directory) and may return output files, which the container
// publishes as file resources.  Services that move large data — the
// paper's matrices of "hundreds of megabytes" — implement this form.
type RequestFunc func(ctx context.Context, req *Request) (*Result, error)

// BatchFunc is the micro-batched form of an in-process computational
// function: it receives the inputs of several requests at once and returns
// one output map (or one error) per request, in request order.  A batch
// function coexists with the single-request Func of the same name — the
// adapter uses whichever form matches how the container dispatched the work.
type BatchFunc func(ctx context.Context, batch []core.Values) ([]core.Values, []error)

// nativeFuncs is the process-wide registry of invocable functions.  A
// service configuration refers to functions by name, mirroring the Java
// adapter's "name of the corresponding class".
var nativeFuncs = struct {
	sync.RWMutex
	m map[string]Func
	r map[string]RequestFunc
	b map[string]BatchFunc
}{m: make(map[string]Func), r: make(map[string]RequestFunc), b: make(map[string]BatchFunc)}

// RegisterFunc makes fn available to Native adapters under the given name.
// It replaces a previous registration with the same name, which keeps test
// packages independent.
func RegisterFunc(name string, fn Func) {
	if fn == nil {
		panic("adapter: RegisterFunc with nil function")
	}
	nativeFuncs.Lock()
	defer nativeFuncs.Unlock()
	nativeFuncs.m[name] = fn
	delete(nativeFuncs.r, name)
	delete(nativeFuncs.b, name)
}

// RegisterRequestFunc makes a file-aware function available to Native
// adapters under the given name, replacing any previous registration of
// either kind.
func RegisterRequestFunc(name string, fn RequestFunc) {
	if fn == nil {
		panic("adapter: RegisterRequestFunc with nil function")
	}
	nativeFuncs.Lock()
	defer nativeFuncs.Unlock()
	nativeFuncs.r[name] = fn
	delete(nativeFuncs.m, name)
	delete(nativeFuncs.b, name)
}

// RegisterBatchFunc adds a micro-batched form for an already registered
// function name.  It does not replace the single-request registration — the
// Native adapter still needs Func or RequestFunc for unbatched dispatch —
// it only enables InvokeBatch to process several requests in one call.
func RegisterBatchFunc(name string, fn BatchFunc) {
	if fn == nil {
		panic("adapter: RegisterBatchFunc with nil function")
	}
	nativeFuncs.Lock()
	defer nativeFuncs.Unlock()
	nativeFuncs.b[name] = fn
}

// LookupBatchFunc returns the registered batch function with the given name.
func LookupBatchFunc(name string) (BatchFunc, bool) {
	nativeFuncs.RLock()
	defer nativeFuncs.RUnlock()
	fn, ok := nativeFuncs.b[name]
	return fn, ok
}

// LookupFunc returns the registered function with the given name.
func LookupFunc(name string) (Func, bool) {
	nativeFuncs.RLock()
	defer nativeFuncs.RUnlock()
	fn, ok := nativeFuncs.m[name]
	return fn, ok
}

// LookupRequestFunc returns the registered file-aware function with the
// given name.
func LookupRequestFunc(name string) (RequestFunc, bool) {
	nativeFuncs.RLock()
	defer nativeFuncs.RUnlock()
	fn, ok := nativeFuncs.r[name]
	return fn, ok
}

// Funcs returns the sorted names of all registered native functions.
func Funcs() []string {
	nativeFuncs.RLock()
	defer nativeFuncs.RUnlock()
	names := make([]string, 0, len(nativeFuncs.m)+len(nativeFuncs.r))
	for name := range nativeFuncs.m {
		names = append(names, name)
	}
	for name := range nativeFuncs.r {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NativeConfig is the internal service configuration of the Native adapter.
type NativeConfig struct {
	// Function names the registered Func to invoke.
	Function string `json:"function"`
	// SimulatedSlowdown, when positive, makes the adapter sleep
	// SimulatedSlowdown × t after a call that computed for t.  It
	// models a service whose backing hardware is that much slower than
	// the local substrate: sleeps overlap across concurrent jobs the
	// way work on distinct remote machines does, while local CPU work
	// serializes.  The performance experiments use it to reproduce the
	// paper's multi-node timing behaviour on a single test machine; it
	// is off (0) by default.
	SimulatedSlowdown float64 `json:"simulatedSlowdown,omitempty"`
}

// NativeAdapter performs an invocation of a registered Go function inside
// the current process, passing request parameters in the call.
type NativeAdapter struct {
	name     string
	fn       Func
	reqFn    RequestFunc
	batchFn  BatchFunc
	slowdown float64
}

// NewNativeAdapter builds a NativeAdapter from its JSON configuration.
func NewNativeAdapter(config json.RawMessage) (Interface, error) {
	var cfg NativeConfig
	if err := json.Unmarshal(config, &cfg); err != nil {
		return nil, fmt.Errorf("native adapter: %w", err)
	}
	if cfg.SimulatedSlowdown < 0 {
		return nil, fmt.Errorf("native adapter: negative simulatedSlowdown")
	}
	a := &NativeAdapter{name: cfg.Function, slowdown: cfg.SimulatedSlowdown}
	a.batchFn, _ = LookupBatchFunc(cfg.Function)
	if fn, ok := LookupFunc(cfg.Function); ok {
		a.fn = fn
		return a, nil
	}
	if fn, ok := LookupRequestFunc(cfg.Function); ok {
		a.reqFn = fn
		return a, nil
	}
	return nil, fmt.Errorf("native adapter: function %q is not registered (have %v)",
		cfg.Function, Funcs())
}

// Kind implements Interface.
func (a *NativeAdapter) Kind() string { return "native" }

// NeedsWorkDir implements WorkDirCapability: only request-form functions
// receive the Request (and with it WorkDir); plain value functions never
// see a path, so their jobs can skip scratch-directory creation entirely.
func (a *NativeAdapter) NeedsWorkDir() bool { return a.reqFn != nil }

// call dispatches to whichever function form is registered.
func (a *NativeAdapter) call(ctx context.Context, req *Request) (*Result, error) {
	if a.reqFn != nil {
		return a.reqFn(ctx, req)
	}
	outputs, err := a.fn(ctx, req.Inputs)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: outputs}, nil
}

// Invoke implements Interface.
func (a *NativeAdapter) Invoke(ctx context.Context, req *Request) (*Result, error) {
	if a.slowdown <= 0 {
		res, err := a.call(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("native adapter: %s: %w", a.name, err)
		}
		return res, nil
	}
	// Simulated slowdown: measure the function's own compute and sleep
	// proportionally.  Prefer per-thread CPU time (with the goroutine
	// pinned to its thread), so concurrent jobs time-slicing one CPU do
	// not inflate each other's simulated sleeps.
	runtime.LockOSThread()
	cpu0, cpuOK := threadCPUTime()
	wall0 := time.Now()
	res, err := a.call(ctx, req)
	var compute time.Duration
	if cpu1, ok := threadCPUTime(); cpuOK && ok {
		compute = cpu1 - cpu0
	} else {
		compute = time.Since(wall0)
	}
	runtime.UnlockOSThread()
	if err != nil {
		return nil, fmt.Errorf("native adapter: %s: %w", a.name, err)
	}
	extra := time.Duration(a.slowdown * float64(compute))
	select {
	case <-time.After(extra):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return res, nil
}

// InvokeBatch implements BatchInterface.  When a BatchFunc is registered
// under the adapter's function name, the whole batch is processed in one
// call — that is where per-invocation overhead (and, under simulated
// slowdown, the proportional sleep) is amortised.  Without one it degrades
// to per-request Invoke calls, preserving semantics at single-request cost.
func (a *NativeAdapter) InvokeBatch(ctx context.Context, reqs []*Request) ([]BatchItem, error) {
	items := make([]BatchItem, len(reqs))
	if a.batchFn == nil {
		for i, req := range reqs {
			res, err := a.Invoke(ctx, req)
			items[i] = BatchItem{Result: res, Err: err}
		}
		return items, nil
	}
	batch := make([]core.Values, len(reqs))
	for i, req := range reqs {
		batch[i] = req.Inputs
	}
	var outs []core.Values
	var errs []error
	runBatch := func() error {
		outs, errs = a.batchFn(ctx, batch)
		if len(outs) != len(reqs) || len(errs) != len(reqs) {
			return fmt.Errorf("native adapter: %s: batch function returned %d outputs and %d errors for %d requests",
				a.name, len(outs), len(errs), len(reqs))
		}
		return nil
	}
	if a.slowdown <= 0 {
		if err := runBatch(); err != nil {
			return nil, err
		}
	} else {
		runtime.LockOSThread()
		cpu0, cpuOK := threadCPUTime()
		wall0 := time.Now()
		err := runBatch()
		var compute time.Duration
		if cpu1, ok := threadCPUTime(); cpuOK && ok {
			compute = cpu1 - cpu0
		} else {
			compute = time.Since(wall0)
		}
		runtime.UnlockOSThread()
		if err != nil {
			return nil, err
		}
		extra := time.Duration(a.slowdown * float64(compute))
		select {
		case <-time.After(extra):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	for i := range reqs {
		if errs[i] != nil {
			items[i] = BatchItem{Err: fmt.Errorf("native adapter: %s: %w", a.name, errs[i])}
		} else {
			items[i] = BatchItem{Result: &Result{Outputs: outs[i]}}
		}
	}
	return items, nil
}
