//go:build !linux

package adapter

import "time"

// threadCPUTime is unavailable off Linux; callers fall back to wall-clock
// measurement, which is accurate when concurrent jobs do not contend for
// the same CPU.
func threadCPUTime() (time.Duration, bool) { return 0, false }
