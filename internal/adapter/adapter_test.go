package adapter

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/core"
)

func newRequest(t *testing.T, inputs core.Values) *Request {
	t.Helper()
	return &Request{
		JobID:   "job1",
		Service: "svc",
		Inputs:  inputs,
		Files:   map[string]string{},
		WorkDir: t.TempDir(),
	}
}

func TestRegistryKindsAndUnknown(t *testing.T) {
	r := NewRegistry()
	kinds := r.Kinds()
	want := []string{"chaos", "command", "native", "script"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if _, err := r.New("bogus", nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRegistryReplaceRegistration(t *testing.T) {
	r := NewRegistry()
	r.Register("custom", func(json.RawMessage) (Interface, error) {
		return nil, fmt.Errorf("v1")
	})
	r.Register("custom", func(json.RawMessage) (Interface, error) {
		return nil, fmt.Errorf("v2")
	})
	_, err := r.New("custom", nil)
	if err == nil || !strings.Contains(err.Error(), "v2") {
		t.Errorf("err = %v, want v2", err)
	}
}

func TestNativeAdapter(t *testing.T) {
	RegisterFunc("test.echo", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"echo": in["msg"]}, nil
	})
	a, err := NewNativeAdapter(json.RawMessage(`{"function": "test.echo"}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind() != "native" {
		t.Errorf("kind = %s", a.Kind())
	}
	res, err := a.Invoke(context.Background(), newRequest(t, core.Values{"msg": "hi"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["echo"] != "hi" {
		t.Errorf("echo = %v", res.Outputs["echo"])
	}
}

func TestNativeAdapterUnknownFunction(t *testing.T) {
	if _, err := NewNativeAdapter(json.RawMessage(`{"function": "no.such"}`)); err == nil {
		t.Error("unknown function accepted at configure time")
	}
}

func TestNativeAdapterNegativeSlowdownRejected(t *testing.T) {
	RegisterFunc("test.noop", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{}, nil
	})
	_, err := NewNativeAdapter(json.RawMessage(`{"function": "test.noop", "simulatedSlowdown": -1}`))
	if err == nil {
		t.Error("negative slowdown accepted")
	}
}

func TestNativeAdapterSimulatedSlowdown(t *testing.T) {
	RegisterFunc("test.burn", func(_ context.Context, in core.Values) (core.Values, error) {
		// Busy loop for roughly 20 ms of CPU.
		deadline := time.Now().Add(20 * time.Millisecond)
		x := 0.0
		for time.Now().Before(deadline) {
			x += 1
		}
		return core.Values{"x": x}, nil
	})
	a, err := NewNativeAdapter(json.RawMessage(`{"function": "test.burn", "simulatedSlowdown": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.Invoke(context.Background(), newRequest(t, core.Values{})); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 20 ms compute + 60 ms simulated sleep, generous bounds.
	if elapsed < 60*time.Millisecond {
		t.Errorf("elapsed %v, want >= 60ms (slowdown not applied)", elapsed)
	}
}

func TestScriptAdapter(t *testing.T) {
	a, err := NewScriptAdapter(json.RawMessage(`{"script": "out.y = in.x * 2"}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Invoke(context.Background(), newRequest(t, core.Values{"x": 21.0}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["y"] != 42.0 {
		t.Errorf("y = %v", res.Outputs["y"])
	}
}

func TestScriptAdapterRejectsBadSyntaxAtDeploy(t *testing.T) {
	if _, err := NewScriptAdapter(json.RawMessage(`{"script": "out.y = "}`)); err == nil {
		t.Error("bad script accepted at configure time")
	}
}

func TestCommandAdapterArgsAndStdout(t *testing.T) {
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/echo",
		"args": ["result:", "{x}"],
		"stdoutOutput": "text"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Invoke(context.Background(), newRequest(t, core.Values{"x": 7.0}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(res.Outputs["text"].(string)) != "result: 7" {
		t.Errorf("text = %q", res.Outputs["text"])
	}
}

func TestCommandAdapterStdoutJSON(t *testing.T) {
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/sh",
		"args": ["-c", "echo '{{\"y\": 49}}'"],
		"stdoutJSON": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Invoke(context.Background(), newRequest(t, core.Values{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["y"] != 49.0 {
		t.Errorf("y = %v", res.Outputs["y"])
	}
}

func TestCommandAdapterStdinTemplate(t *testing.T) {
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/cat",
		"stdin": "hello {name}",
		"stdoutOutput": "out"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Invoke(context.Background(), newRequest(t, core.Values{"name": "world"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["out"] != "hello world" {
		t.Errorf("out = %q", res.Outputs["out"])
	}
}

func TestCommandAdapterInputOutputFiles(t *testing.T) {
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/sh",
		"args": ["-c", "tr a-z A-Z < {data.path} > out.txt"],
		"inputFiles": {"data": "in.txt"},
		"outputFiles": {"result": "out.txt"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	req := newRequest(t, core.Values{"data": "shout this"})
	res, err := a.Invoke(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	path, ok := res.Files["result"]
	if !ok {
		t.Fatal("no result file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "SHOUT THIS" {
		t.Errorf("result = %q", data)
	}
}

func TestCommandAdapterStagedFileInput(t *testing.T) {
	req := newRequest(t, core.Values{"data": core.FileRef("xyz")})
	staged := filepath.Join(req.WorkDir, "staged")
	if err := os.WriteFile(staged, []byte("from store"), 0o600); err != nil {
		t.Fatal(err)
	}
	req.Files["data"] = staged
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/cat",
		"args": ["{data.path}"],
		"stdoutOutput": "out"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Invoke(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["out"] != "from store" {
		t.Errorf("out = %q", res.Outputs["out"])
	}
}

func TestCommandAdapterFailureIncludesStderr(t *testing.T) {
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/sh",
		"args": ["-c", "echo boom >&2; exit 3"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Invoke(context.Background(), newRequest(t, core.Values{}))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want stderr content", err)
	}
}

func TestCommandAdapterUnknownPlaceholder(t *testing.T) {
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/echo",
		"args": ["{missing}"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Invoke(context.Background(), newRequest(t, core.Values{}))
	if err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("err = %v", err)
	}
}

func TestCommandAdapterCancellation(t *testing.T) {
	a, err := NewCommandAdapter(json.RawMessage(`{
		"command": "/bin/sleep",
		"args": ["10"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = a.Invoke(ctx, newRequest(t, core.Values{}))
	if err == nil {
		t.Fatal("cancelled command succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt the process")
	}
}

func TestCommandAdapterEmptyCommandRejected(t *testing.T) {
	if _, err := NewCommandAdapter(json.RawMessage(`{"command": "  "}`)); err == nil {
		t.Error("empty command accepted")
	}
}

func TestExpandTemplateEscapes(t *testing.T) {
	req := &Request{Inputs: core.Values{"x": 5.0}, WorkDir: "/w"}
	got, err := expandTemplate(`{{"x": {x}, "dir": "{workdir}"}}`, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != `{"x": 5, "dir": "/w"}` {
		t.Errorf("expand = %q", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    any
		want string
	}{
		{"s", "s"},
		{3.0, "3"},
		{3.5, "3.5"},
		{true, "true"},
		{false, "false"},
		{nil, ""},
		{[]any{1.0, 2.0}, "[1,2]"},
	}
	for _, tc := range cases {
		if got := valueString(tc.v); got != tc.want {
			t.Errorf("valueString(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
