//go:build linux

package adapter

import (
	"syscall"
	"time"
	"unsafe"
)

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <time.h>.
const clockThreadCPUTimeID = 3

// threadCPUTime returns the CPU time consumed by the calling OS thread.
// The simulated-slowdown feature measures the adapter function's own
// compute with it (the goroutine is pinned to its thread for the call), so
// that time-slicing against concurrent jobs does not inflate the simulated
// sleep — otherwise parallel runs would be penalized by their own
// concurrency and the simulation would be useless.
func threadCPUTime() (time.Duration, bool) {
	var ts syscall.Timespec
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME,
		uintptr(clockThreadCPUTimeID), uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0, false
	}
	return time.Duration(ts.Sec)*time.Second + time.Duration(ts.Nsec), true
}
