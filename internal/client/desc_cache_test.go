package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mathcloud/internal/core"
)

// descServer is a stub service resource that serves a description with an
// entity tag and answers conditional GETs with 304, counting full bodies
// served so tests can assert the client cache actually avoided transfers.
func descServer(t *testing.T, etag *atomic.Value, full *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tag := etag.Load().(string)
		if r.Header.Get("If-None-Match") == tag {
			w.Header().Set("ETag", tag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		full.Add(1)
		w.Header().Set("ETag", tag)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(core.ServiceDescription{
			Name:  "cachedsvc",
			Title: "revision " + tag,
			Inputs: []core.Param{
				{Name: "x", Title: "Input"},
			},
		})
	}))
}

// TestDescribeRevalidatesWithConditionalGET checks the client description
// cache end to end: the first Describe transfers the body, later calls
// revalidate with If-None-Match, get 304, and return the cached decoded
// description unchanged; a changed entity tag forces one new full fetch.
func TestDescribeRevalidatesWithConditionalGET(t *testing.T) {
	var etag atomic.Value
	etag.Store(`"v1"`)
	var full atomic.Int64
	srv := descServer(t, &etag, &full)
	defer srv.Close()

	c := New()
	svc := c.Service(srv.URL + "/services/cachedsvc")
	ctx := context.Background()

	first, err := svc.Describe(ctx)
	if err != nil {
		t.Fatalf("first describe: %v", err)
	}
	if full.Load() != 1 {
		t.Fatalf("first describe served %d full bodies, want 1", full.Load())
	}
	for i := 0; i < 3; i++ {
		again, err := svc.Describe(ctx)
		if err != nil {
			t.Fatalf("revalidated describe %d: %v", i, err)
		}
		if again.Name != first.Name || again.Title != first.Title || len(again.Inputs) != len(first.Inputs) {
			t.Fatalf("revalidated describe %d returned %+v, want cached %+v", i, again, first)
		}
	}
	if full.Load() != 1 {
		t.Fatalf("revalidations transferred bodies: %d full responses, want 1", full.Load())
	}

	// Description changed server-side: the stale tag no longer matches, so
	// exactly one more full transfer happens and the cache is refreshed.
	etag.Store(`"v2"`)
	updated, err := svc.Describe(ctx)
	if err != nil {
		t.Fatalf("describe after change: %v", err)
	}
	if updated.Title != `revision "v2"` {
		t.Fatalf("stale description after server change: %+v", updated)
	}
	if full.Load() != 2 {
		t.Fatalf("change served %d full bodies, want 2", full.Load())
	}
	if _, err := svc.Describe(ctx); err != nil {
		t.Fatal(err)
	}
	if full.Load() != 2 {
		t.Fatalf("new tag not cached: %d full responses, want 2", full.Load())
	}
}

// TestDescribeWithoutETagStaysUncached checks that a server not emitting
// entity tags keeps working: every Describe is a plain full fetch.
func TestDescribeWithoutETagStaysUncached(t *testing.T) {
	var full atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-None-Match") != "" {
			t.Error("client sent If-None-Match without a cached entity tag")
		}
		full.Add(1)
		json.NewEncoder(w).Encode(core.ServiceDescription{Name: "plain"})
	}))
	defer srv.Close()

	c := New()
	svc := c.Service(srv.URL + "/services/plain")
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		d, err := svc.Describe(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != "plain" {
			t.Fatalf("got %+v", d)
		}
	}
	if full.Load() != 2 {
		t.Fatalf("served %d full bodies, want 2", full.Load())
	}
}
