package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/rest"
)

// sseJobServer stubs a job resource with an /events stream: the snapshot
// is RUNNING, and the stream pushes RUNNING then DONE frames.
func sseJobServer(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var pollHits, streamHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/services/echo/jobs/job1", func(w http.ResponseWriter, r *http.Request) {
		pollHits.Add(1)
		json.NewEncoder(w).Encode(core.Job{ID: "job1", State: core.StateDone})
	})
	mux.HandleFunc("/services/echo/jobs/job1/events", func(w http.ResponseWriter, r *http.Request) {
		streamHits.Add(1)
		w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		running, _ := json.Marshal(core.Job{ID: "job1", State: core.StateRunning})
		done, _ := json.Marshal(core.Job{ID: "job1", State: core.StateDone})
		events.WriteEvent(w, events.Event{ID: 1, Type: events.TypeJob, Data: running})
		events.WriteEvent(w, events.Event{ID: 2, Type: events.TypeJob, Data: done, End: true})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &pollHits, &streamHits
}

func TestWaitSSEFollowsStream(t *testing.T) {
	srv, pollHits, streamHits := sseJobServer(t)
	svc := New().Service(srv.URL + "/services/echo")
	job, err := svc.WaitSSE(context.Background(), srv.URL+"/services/echo/jobs/job1")
	if err != nil {
		t.Fatalf("WaitSSE: %v", err)
	}
	if job.State != core.StateDone {
		t.Fatalf("state = %s, want DONE", job.State)
	}
	if streamHits.Load() != 1 || pollHits.Load() != 0 {
		t.Fatalf("stream=%d poll=%d, want the single stream request and no polls",
			streamHits.Load(), pollHits.Load())
	}
}

// TestWaitSSEFallsBackToPolling: a server without /events routes (404)
// must be handled transparently by degrading to the long-poll Wait.
func TestWaitSSEFallsBackToPolling(t *testing.T) {
	var pollHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/services/echo/jobs/job1", func(w http.ResponseWriter, r *http.Request) {
		pollHits.Add(1)
		json.NewEncoder(w).Encode(core.Job{ID: "job1", State: core.StateDone})
	})
	srv := httptest.NewServer(mux) // no /events route: 404
	t.Cleanup(srv.Close)

	svc := New().Service(srv.URL + "/services/echo")
	job, err := svc.WaitSSE(context.Background(), srv.URL+"/services/echo/jobs/job1")
	if err != nil {
		t.Fatalf("WaitSSE fallback: %v", err)
	}
	if job.State != core.StateDone || pollHits.Load() == 0 {
		t.Fatalf("fallback did not poll: state=%s polls=%d", job.State, pollHits.Load())
	}
}

// TestWaitSSEFallsBackOnWrongContentType: an intermediary answering 200
// with JSON instead of an event stream is as unusable as a 404.
func TestWaitSSEFallsBackOnWrongContentType(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/services/echo/jobs/job1", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(core.Job{ID: "job1", State: core.StateDone})
	})
	mux.HandleFunc("/services/echo/jobs/job1/events", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"not": "a stream"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	svc := New().Service(srv.URL + "/services/echo")
	job, err := svc.WaitSSE(context.Background(), srv.URL+"/services/echo/jobs/job1")
	if err != nil || job.State != core.StateDone {
		t.Fatalf("WaitSSE = %+v, %v", job, err)
	}
}

// TestEventsReconnectResumes: after an idle server close the client
// reconnects with Last-Event-ID and continues from where it left off.
func TestEventsReconnectResumes(t *testing.T) {
	var conns atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/services/echo/jobs/job1/events", func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		if n == 1 {
			// First connection: one frame, then an idle close.
			events.WriteEvent(w, events.Event{ID: 1, Type: events.TypeJob,
				Data: []byte(`{"id":"job1","state":"RUNNING"}`)})
			return
		}
		if got := r.Header.Get("Last-Event-ID"); got != "1" {
			t.Errorf("reconnect Last-Event-ID = %q, want 1", got)
		}
		events.WriteEvent(w, events.Event{ID: 2, Type: events.TypeJob,
			Data: []byte(`{"id":"job1","state":"DONE"}`), End: true})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	c := New()
	c.MinPoll = time.Millisecond // fast reconnect pause for the test
	job, err := c.Service(srv.URL+"/services/echo").WaitSSE(
		context.Background(), srv.URL+"/services/echo/jobs/job1")
	if err != nil {
		t.Fatalf("WaitSSE: %v", err)
	}
	if job.State != core.StateDone || conns.Load() != 2 {
		t.Fatalf("state=%s conns=%d, want DONE over 2 connections", job.State, conns.Load())
	}
}

// TestEventsUnsupportedSurfaced: direct Events callers can detect the
// degradation condition with errors.Is.
func TestEventsUnsupportedSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(srv.Close)
	err := New().Service(srv.URL+"/services/x").Events(context.Background(),
		srv.URL+"/services/x/jobs/j", func(events.Event) (bool, error) { return true, nil })
	if !errors.Is(err, ErrEventsUnsupported) {
		t.Fatalf("err = %v, want ErrEventsUnsupported", err)
	}
}

// TestClientRespectsAdvertisedWaitMax: a server advertising Wait-Max: 1s
// must not be asked for the client's larger default window on the next
// poll — the long-poll loop shrinks to the server's ceiling.
func TestClientRespectsAdvertisedWaitMax(t *testing.T) {
	var polls atomic.Int64
	waits := make(chan string, 8)
	mux := http.NewServeMux()
	mux.HandleFunc("/services/echo/jobs/job1", func(w http.ResponseWriter, r *http.Request) {
		n := polls.Add(1)
		waits <- r.URL.Query().Get("wait")
		w.Header().Set(rest.WaitMaxHeader, "1s")
		state := core.StateRunning
		if n >= 2 {
			state = core.StateDone
		}
		json.NewEncoder(w).Encode(core.Job{ID: "job1", State: state})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	c := New()
	c.WaitWindow = 30 * time.Second
	c.MinPoll = time.Millisecond
	job, err := c.Service(srv.URL+"/services/echo").Wait(
		context.Background(), srv.URL+"/services/echo/jobs/job1")
	if err != nil || job.State != core.StateDone {
		t.Fatalf("Wait = %+v, %v", job, err)
	}
	first, second := <-waits, <-waits
	if first != "30s" {
		t.Fatalf("first poll wait = %q, want the client default 30s", first)
	}
	if d, err := time.ParseDuration(second); err != nil || d > time.Second {
		t.Fatalf("second poll wait = %q, want shrunk to the advertised 1s ceiling", second)
	}
}
