package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/rest"
)

// SSE consumption: the push-based alternative to the long-poll loops of
// Wait/WaitSweep.  WaitSSE and WaitSweepSSE prefer the /events stream —
// one connection carries every state transition — and fall back to the
// long-poll floor transparently when the server does not expose streams.

// ErrEventsUnsupported reports that the server does not expose an SSE
// /events stream for the resource (older server, proxy stripping the
// stream, …).  WaitSSE/WaitSweepSSE catch it internally and degrade to
// long-polling; direct Events callers can match it with errors.Is.
var ErrEventsUnsupported = errors.New("client: server does not support event streams")

// streamClient returns an http.Client suitable for long-lived streams:
// the caller's transport without the overall response timeout, which
// would otherwise kill a healthy stream mid-watch.  Context cancellation
// still applies per request.
func (c *Client) streamClient() *http.Client {
	base := c.httpClient()
	if base.Timeout == 0 {
		return base
	}
	return &http.Client{
		Transport:     base.Transport,
		CheckRedirect: base.CheckRedirect,
		Jar:           base.Jar,
	}
}

// Events opens the SSE stream at resourceURI+"/events" and invokes fn for
// every event frame.  fn returns done=true to end the watch, or an error
// to abort it.  The stream is re-opened transparently after server idle
// closes and transient drops, resuming with Last-Event-ID so no event is
// lost while the topic's ring covers the gap (a "sync" frame arrives when
// it cannot).  Returns ErrEventsUnsupported (wrapped) when the server has
// no stream to offer — callers degrade to polling.
func (s *Service) Events(ctx context.Context, resourceURI string, fn func(events.Event) (bool, error)) error {
	c := s.client
	uri := strings.TrimRight(resourceURI, "/") + "/events"
	var lastID uint64
	streamed := false
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, uri, nil)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		req.Header.Set("Accept", "text/event-stream")
		req.Header.Set("Cache-Control", "no-cache")
		if c.Token != "" {
			req.Header.Set("Authorization", "Bearer "+c.Token)
		}
		if c.ActFor != "" {
			req.Header.Set(core.ActForHeader, c.ActFor)
		}
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
		}
		resp, err := c.retry().Do(c.streamClient(), req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !streamed {
				return fmt.Errorf("%w: %v", ErrEventsUnsupported, err)
			}
			// The stream worked before and the connection now fails even
			// after retries: degrade rather than spin.
			return fmt.Errorf("%w: reconnect failed: %v", ErrEventsUnsupported, err)
		}
		switch {
		case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed:
			rest.Drain(resp.Body)
			return ErrEventsUnsupported
		case resp.StatusCode != http.StatusOK:
			return apiError(resp)
		case !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream"):
			rest.Drain(resp.Body)
			return ErrEventsUnsupported
		}
		streamed = true
		sc := events.NewScanner(resp.Body)
		for {
			ev, err := sc.Next()
			if err != nil {
				// io.EOF is the server's idle close; anything else is a
				// broken connection.  Either way: reconnect with resume.
				_ = resp.Body.Close()
				if err != io.EOF && ctx.Err() != nil {
					return ctx.Err()
				}
				break
			}
			if ev.ID > 0 {
				lastID = ev.ID
			}
			done, ferr := fn(ev)
			if done || ferr != nil {
				_ = resp.Body.Close()
				return ferr
			}
		}
		// Pause before reconnecting, jittered so a fleet of watchers
		// re-opening after a shared idle window drifts apart.
		t := time.NewTimer(rest.Jitter(c.minPoll()))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// WaitSSE waits for the job to reach a terminal state by following its
// event stream, falling back to the long-poll Wait when the server offers
// no stream.  One HTTP request replaces a poll loop: the opening frame
// carries the current snapshot and the terminal transition arrives pushed.
func (s *Service) WaitSSE(ctx context.Context, jobURI string) (*core.Job, error) {
	var last *core.Job
	err := s.Events(ctx, jobURI, func(ev events.Event) (bool, error) {
		if ev.Type != events.TypeJob || len(ev.Data) == 0 {
			return false, nil
		}
		var job core.Job
		if err := json.Unmarshal(ev.Data, &job); err != nil {
			return false, fmt.Errorf("client: decode job event: %w", err)
		}
		last = &job
		return job.State.Terminal(), nil
	})
	switch {
	case err == nil && last != nil && last.State.Terminal():
		return last, nil
	case errors.Is(err, ErrEventsUnsupported):
		return s.Wait(ctx, jobURI)
	case err != nil:
		return nil, err
	default:
		// Defensive: the watch ended without a terminal snapshot.
		return s.Wait(ctx, jobURI)
	}
}

// WaitSweepSSE waits for the whole campaign to finish by following the
// sweep's event stream (aggregate counts arrive pushed, coalesced under
// load), falling back to the long-poll WaitSweep when the server offers no
// stream.
func (s *Service) WaitSweepSSE(ctx context.Context, sweepURI string) (*core.Sweep, error) {
	var last *core.Sweep
	err := s.Events(ctx, sweepURI, func(ev events.Event) (bool, error) {
		if ev.Type != events.TypeSweep || len(ev.Data) == 0 {
			return false, nil
		}
		var sweep core.Sweep
		if err := json.Unmarshal(ev.Data, &sweep); err != nil {
			return false, fmt.Errorf("client: decode sweep event: %w", err)
		}
		last = &sweep
		return sweep.State.Terminal(), nil
	})
	switch {
	case err == nil && last != nil && last.State.Terminal():
		return last, nil
	case errors.Is(err, ErrEventsUnsupported):
		return s.WaitSweep(ctx, sweepURI)
	case err != nil:
		return nil, err
	default:
		return s.WaitSweep(ctx, sweepURI)
	}
}
