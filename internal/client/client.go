// Package client implements the programmatic client of MathCloud
// computational web services.  Because services expose the unified REST
// API over plain HTTP and JSON, the client is a thin layer: describe a
// service, submit requests, poll jobs, stage files.  It corresponds to the
// Java/Python client libraries shipped with the paper's platform.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// Description-cache metric families (DESIGN.md §5d).  A hit is a 304 answer
// that reused the cached decoded description; a miss is a fetch with no
// cached entry; a stale is a conditional fetch the server answered with a
// full 200 because the description changed.
var (
	metDescCacheHits = obs.NewCounter("mc_desc_cache_hits_total",
		"Description fetches answered 304 Not Modified and served from the client cache.")
	metDescCacheMisses = obs.NewCounter("mc_desc_cache_misses_total",
		"Description fetches with no cached entry (full body transfer).")
	metDescCacheStale = obs.NewCounter("mc_desc_cache_stale_total",
		"Conditional description fetches answered 200 because the cached entity tag was stale.")
)

// Client holds the transport configuration shared by service handles.
type Client struct {
	// HTTP is the underlying transport; nil uses the process-wide tuned
	// client (rest.SharedClient).
	HTTP *http.Client
	// Token, when non-empty, is sent as a bearer token; this is how
	// OpenID-style identities authenticate against secured containers.
	Token string
	// ActFor, when non-empty, asks secured services to treat the request
	// as made on behalf of that user (the delegation mechanism; the
	// caller must be on the target service's proxy list).
	ActFor string
	// WaitWindow is the server-side long-poll window used by Wait and
	// Call (0 = 10 s).  The server completes the window the instant the
	// job finishes, so longer windows only reduce round trips.
	WaitWindow time.Duration
	// MinPoll is the minimum delay between successive Wait polls when the
	// server answers before the long-poll window elapses — a server that
	// ignores the wait parameter would otherwise be polled in a tight
	// loop (0 = 250 ms).
	MinPoll time.Duration
	// Retry governs how transient failures — dropped connections, 503
	// overload answers with Retry-After — are retried with exponential
	// backoff.  Nil uses rest.DefaultRetry; rest.NoRetry disables
	// retrying.
	Retry *rest.RetryPolicy

	// descMu guards descCache, the per-client description cache keyed by
	// service URI.  Describe sends If-None-Match with the cached entity
	// tag; a 304 answer reuses the cached decoded description, so repeated
	// description fetches (workflow validation, catalogue pings) cost one
	// header round trip instead of a body transfer plus a JSON decode.
	descMu    sync.Mutex
	descCache map[string]cachedDescription
}

// cachedDescription is one validated entry of the description cache.
type cachedDescription struct {
	etag string
	desc core.ServiceDescription
}

// maxCachedDescriptions bounds the per-client description cache.
const maxCachedDescriptions = 256

// New returns a client with default transport settings.  All clients built
// this way share one tuned http.Transport (rest.SharedTransport), so
// keep-alive connections are pooled across every Service handle in the
// process instead of per call site.
//
// The client is gateway-aware by construction: pointing the base URL of a
// Service handle at a federation gateway (cmd/mcgw) instead of a single
// container changes nothing in the protocol.  Resource identifiers minted by
// federated replicas carry their home replica as an affinity prefix
// (ReplicaOf); the gateway routes on that prefix, and the retry policy
// transparently replays idempotent requests the gateway answered 502/504
// while a replica was down.
func New() *Client {
	return &Client{HTTP: rest.SharedClient}
}

// ReplicaOf extracts the home-replica name from an affinity-tagged resource
// identifier or from a resource URI whose last path segment is one
// ("http://gw/services/s/jobs/r03-<id>" → "r03").  It reports false for bare
// pre-federation IDs.
func ReplicaOf(idOrURI string) (string, bool) {
	seg := idOrURI
	if i := strings.IndexAny(seg, "?#"); i >= 0 {
		seg = seg[:i]
	}
	seg = strings.TrimRight(seg, "/")
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	return core.SplitReplicaID(seg)
}

// defaultClient backs Default.
var defaultClient = New()

// Default returns the process-wide shared client.  Use it for one-off calls
// (description fetches, file downloads) instead of allocating a client per
// call.
func Default() *Client { return defaultClient }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return rest.SharedClient
}

func (c *Client) waitWindow() time.Duration {
	if c.WaitWindow > 0 {
		return c.WaitWindow
	}
	return 10 * time.Second
}

func (c *Client) minPoll() time.Duration {
	if c.MinPoll > 0 {
		return c.MinPoll
	}
	return 250 * time.Millisecond
}

func (c *Client) retry() *rest.RetryPolicy {
	if c.Retry != nil {
		return c.Retry
	}
	return rest.DefaultRetry
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if c.ActFor != "" {
		req.Header.Set(core.ActForHeader, c.ActFor)
	}
	if req.Header.Get("Accept") == "" {
		req.Header.Set("Accept", "application/json")
	}
	return c.retry().Do(c.httpClient(), req)
}

// apiError converts a non-2xx response into an error carrying the server's
// message.
func apiError(resp *http.Response) error {
	defer rest.Drain(resp.Body)
	var body rest.ErrorBody
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &body); err == nil && body.Error != "" {
		return &APIError{Status: resp.StatusCode, Message: body.Error}
	}
	return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
}

// APIError is an error response from a MathCloud service.
type APIError struct {
	Status  int
	Message string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// IsNotFound reports whether err is a 404 API error.
func IsNotFound(err error) bool {
	var api *APIError
	return asAPI(err, &api) && api.Status == http.StatusNotFound
}

func asAPI(err error, target **APIError) bool {
	for err != nil {
		if e, ok := err.(*APIError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func (c *Client) getJSON(ctx context.Context, uri string, out any) error {
	_, err := c.getJSONWait(ctx, uri, out)
	return err
}

// getJSONWait is getJSON, additionally returning the server's advertised
// wait ceiling (the Wait-Max header; 0 when absent).  Long-poll loops use
// it to shrink their requested windows to what the server will honour.
func (c *Client) getJSONWait(ctx context.Context, uri string, out any) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, uri, nil)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, fmt.Errorf("client: GET %s: %w", uri, err)
	}
	defer resp.Body.Close()
	waitMax, _ := time.ParseDuration(resp.Header.Get(rest.WaitMaxHeader))
	if resp.StatusCode != http.StatusOK {
		return waitMax, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return waitMax, fmt.Errorf("client: decode %s: %w", uri, err)
	}
	return waitMax, nil
}

// Service is a handle to one computational web service identified by its
// URI.
type Service struct {
	client *Client
	uri    string
}

// Service returns a handle for the service at the given URI.
func (c *Client) Service(uri string) *Service {
	return &Service{client: c, uri: strings.TrimRight(uri, "/")}
}

// URI returns the service resource URI.
func (s *Service) URI() string { return s.uri }

// Describe performs GET on the service resource and returns its
// description.  Repeated calls revalidate a cached copy with a conditional
// GET (If-None-Match): a 304 answer reuses the cached decoded description
// instead of transferring and re-decoding the body.  Returned descriptions
// share immutable parameter slices with the cache and must not be mutated.
func (s *Service) Describe(ctx context.Context) (core.ServiceDescription, error) {
	return s.client.describeService(ctx, s.uri)
}

// cachedDescription returns the cache entry for uri, if any.
func (c *Client) cachedDescription(uri string) (cachedDescription, bool) {
	c.descMu.Lock()
	defer c.descMu.Unlock()
	entry, ok := c.descCache[uri]
	return entry, ok
}

// storeDescription records a validated description under its entity tag,
// evicting an arbitrary entry when the cache is full.
func (c *Client) storeDescription(uri, etag string, desc core.ServiceDescription) {
	c.descMu.Lock()
	defer c.descMu.Unlock()
	if c.descCache == nil {
		c.descCache = make(map[string]cachedDescription)
	}
	if _, ok := c.descCache[uri]; !ok && len(c.descCache) >= maxCachedDescriptions {
		for k := range c.descCache {
			delete(c.descCache, k)
			break
		}
	}
	c.descCache[uri] = cachedDescription{etag: etag, desc: desc}
}

func (c *Client) describeService(ctx context.Context, uri string) (core.ServiceDescription, error) {
	var desc core.ServiceDescription
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, uri, nil)
	if err != nil {
		return desc, fmt.Errorf("client: %w", err)
	}
	cached, haveCached := c.cachedDescription(uri)
	if haveCached {
		req.Header.Set("If-None-Match", cached.etag)
	}
	resp, err := c.do(req)
	if err != nil {
		return desc, fmt.Errorf("client: GET %s: %w", uri, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotModified && haveCached:
		metDescCacheHits.Inc()
		rest.Drain(resp.Body)
		return cached.desc, nil
	case resp.StatusCode != http.StatusOK:
		return desc, apiError(resp)
	}
	if haveCached {
		metDescCacheStale.Inc()
	} else {
		metDescCacheMisses.Inc()
	}
	if err := json.NewDecoder(resp.Body).Decode(&desc); err != nil {
		return desc, fmt.Errorf("client: decode %s: %w", uri, err)
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		c.storeDescription(uri, etag, desc)
	}
	return desc, nil
}

// Submit performs POST on the service resource, creating a job.  If wait is
// positive the server holds the request until the job completes or the
// window elapses, enabling the synchronous mode of the unified API.
func (s *Service) Submit(ctx context.Context, inputs core.Values, wait time.Duration) (*core.Job, error) {
	body, err := json.Marshal(inputs)
	if err != nil {
		return nil, fmt.Errorf("client: encode inputs: %w", err)
	}
	uri := s.uri
	if wait > 0 {
		uri += "?wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, uri, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.do(req)
	if err != nil {
		return nil, fmt.Errorf("client: POST %s: %w", s.uri, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, apiError(resp)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("client: decode job: %w", err)
	}
	return &job, nil
}

// Job fetches the current representation of a job by URI.
func (s *Service) Job(ctx context.Context, jobURI string) (*core.Job, error) {
	var job core.Job
	if err := s.client.getJSON(ctx, jobURI, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Wait polls the job resource (using server-side long-poll windows) until
// the job is terminal or ctx is cancelled.  The server blocks each window
// on the job's completion channel, so the response arrives the instant the
// job finishes — the window length only bounds how often an idle wait
// re-issues the request.
// A server that ignores the wait parameter (or completes the window
// early) is re-polled no more often than the client's MinPoll, jittered
// (rest.Jitter) so that many watchers started together — e.g. a thousand
// clients following the children of one sweep — drift apart instead of
// phase-locking into synchronized poll bursts, and a non-terminal answer
// never degenerates into a zero-delay busy loop.
func (s *Service) Wait(ctx context.Context, jobURI string) (*core.Job, error) {
	window := s.client.waitWindow()
	minPoll := s.client.minPoll()
	for {
		start := time.Now()
		var job core.Job
		uri := jobURI + "?wait=" + window.String()
		adv, err := s.client.getJSONWait(ctx, uri, &job)
		if err != nil {
			return nil, err
		}
		// Respect the server's advertised ceiling: asking for more than
		// Wait-Max only gets clamped, so shrink the next window to match.
		if adv > 0 && adv < window {
			window = adv
		}
		if job.State.Terminal() {
			return &job, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if delay := rest.Jitter(minPoll); time.Since(start) < delay {
			t := time.NewTimer(delay - time.Since(start))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
	}
}

// Cancel performs DELETE on the job resource.
func (s *Service) Cancel(ctx context.Context, jobURI string) (*core.Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, jobURI, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := s.client.do(req)
	if err != nil {
		return nil, fmt.Errorf("client: DELETE %s: %w", jobURI, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("client: decode job: %w", err)
	}
	return &job, nil
}

// SubmitSweep performs POST on the service's sweep collection, expanding a
// parameter-sweep specification into child jobs in one round trip.  If wait
// is positive the server holds the request until the whole campaign
// completes or the window elapses.
func (s *Service) SubmitSweep(ctx context.Context, spec *core.SweepSpec, wait time.Duration) (*core.Sweep, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode sweep spec: %w", err)
	}
	uri := s.uri + "/sweeps"
	if wait > 0 {
		uri += "?wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, uri, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.do(req)
	if err != nil {
		return nil, fmt.Errorf("client: POST %s: %w", uri, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, apiError(resp)
	}
	var sweep core.Sweep
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		return nil, fmt.Errorf("client: decode sweep: %w", err)
	}
	return &sweep, nil
}

// Sweep fetches the current aggregate status of a sweep by URI.  The answer
// is O(1) on the server regardless of width, so polling wide campaigns is
// cheap.
func (s *Service) Sweep(ctx context.Context, sweepURI string) (*core.Sweep, error) {
	var sweep core.Sweep
	if err := s.client.getJSON(ctx, sweepURI, &sweep); err != nil {
		return nil, err
	}
	return &sweep, nil
}

// WaitSweep polls the sweep resource (using server-side long-poll windows,
// jittered like Wait) until every child job is terminal or ctx is
// cancelled.
func (s *Service) WaitSweep(ctx context.Context, sweepURI string) (*core.Sweep, error) {
	window := s.client.waitWindow()
	minPoll := s.client.minPoll()
	for {
		start := time.Now()
		var sweep core.Sweep
		uri := sweepURI + "?wait=" + window.String()
		adv, err := s.client.getJSONWait(ctx, uri, &sweep)
		if err != nil {
			return nil, err
		}
		if adv > 0 && adv < window {
			window = adv
		}
		if sweep.State.Terminal() {
			return &sweep, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if delay := rest.Jitter(minPoll); time.Since(start) < delay {
			t := time.NewTimer(delay - time.Since(start))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
	}
}

// CancelSweep performs DELETE on the sweep resource, cancelling every
// non-terminal child in one call.
func (s *Service) CancelSweep(ctx context.Context, sweepURI string) (*core.Sweep, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, sweepURI, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := s.client.do(req)
	if err != nil {
		return nil, fmt.Errorf("client: DELETE %s: %w", sweepURI, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var sweep core.Sweep
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		return nil, fmt.Errorf("client: decode sweep: %w", err)
	}
	return &sweep, nil
}

// SweepJobs fetches one page of a sweep's child jobs in point order,
// optionally filtered by state ("" = all).  limit 0 returns every matching
// child; the second result is the total match count before paging.
func (s *Service) SweepJobs(ctx context.Context, sweepURI string, state core.JobState, limit, offset int) ([]*core.Job, int, error) {
	uri := fmt.Sprintf("%s/jobs?limit=%d&offset=%d", sweepURI, limit, offset)
	if state != "" {
		uri += "&state=" + string(state)
	}
	var page struct {
		Jobs  []*core.Job `json:"jobs"`
		Total int         `json:"total"`
	}
	if err := s.client.getJSON(ctx, uri, &page); err != nil {
		return nil, 0, err
	}
	return page.Jobs, page.Total, nil
}

// Call is the convenience synchronous invocation: submit, wait for
// completion and return the outputs, turning job-level failures into
// errors.  The submit long-polls one window (short jobs answer in a
// single round trip); a job still running after that is followed over its
// SSE event stream, with transparent fallback to long-polling.
func (s *Service) Call(ctx context.Context, inputs core.Values) (core.Values, error) {
	job, err := s.Submit(ctx, inputs, s.client.waitWindow())
	if err != nil {
		return nil, err
	}
	if !job.State.Terminal() {
		job, err = s.WaitSSE(ctx, job.URI)
		if err != nil {
			return nil, err
		}
	}
	switch job.State {
	case core.StateDone:
		return job.Outputs, nil
	case core.StateCancelled:
		return nil, fmt.Errorf("client: job %s was cancelled", job.ID)
	default:
		return nil, &JobError{Service: s.uri, JobID: job.ID, Message: job.Error}
	}
}

// JobError reports a job that terminated in the ERROR state.
type JobError struct {
	Service string
	JobID   string
	Message string
}

// Error implements the error interface.
func (e *JobError) Error() string {
	return fmt.Sprintf("client: job %s on %s failed: %s", e.JobID, e.Service, e.Message)
}

// UploadFile posts data to the container's file collection and returns the
// file reference to embed in request parameters.
func (c *Client) UploadFile(ctx context.Context, containerBase string, data io.Reader) (string, error) {
	uri := strings.TrimRight(containerBase, "/") + "/files"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, uri, data)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.do(req)
	if err != nil {
		return "", fmt.Errorf("client: POST %s: %w", uri, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", apiError(resp)
	}
	var out struct {
		Ref string `json:"ref"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("client: decode upload response: %w", err)
	}
	return out.Ref, nil
}

// FetchFile downloads the content behind a file-reference parameter value.
// It buffers the whole file; prefer FetchFileTo for large data.
func (c *Client) FetchFile(ctx context.Context, value any) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := c.FetchFileTo(ctx, value, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FetchFileTo streams the content behind a file-reference parameter value
// into dst through a pooled copy buffer, returning the number of bytes
// transferred.  The heap cost is O(buffer) regardless of file size.
func (c *Client) FetchFileTo(ctx context.Context, value any, dst io.Writer) (int64, error) {
	ref, ok := core.FileRefID(value)
	if !ok {
		return 0, fmt.Errorf("client: value is not a file reference")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ref, nil)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, fmt.Errorf("client: GET %s: %w", ref, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	n, err := rest.Copy(dst, resp.Body)
	if err != nil {
		return n, fmt.Errorf("client: download %s: %w", ref, err)
	}
	return n, nil
}

// ServiceNames fetches the container index and returns the deployed
// service names.
func (c *Client) ServiceNames(ctx context.Context, containerBase string) ([]string, error) {
	var index struct {
		Services []core.ServiceDescription `json:"services"`
	}
	if err := c.getJSON(ctx, strings.TrimRight(containerBase, "/")+"/", &index); err != nil {
		return nil, err
	}
	names := make([]string, len(index.Services))
	for i, s := range index.Services {
		names[i] = s.Name
	}
	return names, nil
}

// Load fetches a container's load report (GET /load): advertised queue
// depth, worker occupancy and memo cache size, feeding the gateway's
// load-aware placement and admission control.
func (c *Client) Load(ctx context.Context, containerBase string) (core.LoadReport, error) {
	var report core.LoadReport
	err := c.getJSON(ctx, strings.TrimRight(containerBase, "/")+"/load", &report)
	return report, err
}

// MemoIndex fetches one page of a container's memo delta feed
// (GET /memo?since=N).  Pass the sequence number returned by the previous
// page to receive only the changes since; a page with Reset set means the
// cursor was too old and the entries are a full dump.
func (c *Client) MemoIndex(ctx context.Context, containerBase string, since uint64) (core.MemoIndexPage, error) {
	var page core.MemoIndexPage
	uri := strings.TrimRight(containerBase, "/") + "/memo?since=" + strconv.FormatUint(since, 10)
	err := c.getJSON(ctx, uri, &page)
	return page, err
}
