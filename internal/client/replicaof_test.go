package client

import "testing"

func TestReplicaOf(t *testing.T) {
	hex := "0123456789abcdef0123456789abcdef"
	cases := []struct {
		in      string
		replica string
		ok      bool
	}{
		{"r03-" + hex, "r03", true},
		{"http://gw:8090/services/add/jobs/r03-" + hex, "r03", true},
		{"http://gw:8090/services/add/jobs/r03-" + hex + "?wait=10s", "r03", true},
		{"http://gw:8090/files/r12-" + hex + "/", "r12", true},
		{hex, "", false}, // bare pre-federation ID
		{"http://gw:8090/services/add", "", false}, // no ID segment
		{"R03-" + hex, "", false},                  // uppercase prefix invalid
		{"", "", false},
	}
	for _, c := range cases {
		rep, ok := ReplicaOf(c.in)
		if rep != c.replica || ok != c.ok {
			t.Fatalf("ReplicaOf(%q) = (%q, %v), want (%q, %v)", c.in, rep, ok, c.replica, c.ok)
		}
	}
}
