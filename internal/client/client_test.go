package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/core"
)

// fakeService is a minimal HTTP stub of the unified REST API for client
// tests that must not depend on the container package.
func fakeService(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	var srvURL string
	mux.HandleFunc("/services/echo", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			json.NewEncoder(w).Encode(core.ServiceDescription{
				Name: "echo", URI: srvURL + "/services/echo",
			})
		case http.MethodPost:
			var in core.Values
			if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
				w.WriteHeader(400)
				return
			}
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(core.Job{
				ID:      "job1",
				Service: "echo",
				State:   core.StateDone,
				Outputs: in,
				URI:     srvURL + "/services/echo/jobs/job1",
			})
		}
	})
	mux.HandleFunc("/services/echo/jobs/job1", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(core.Job{
			ID: "job1", Service: "echo", State: core.StateDone,
			Outputs: core.Values{"ok": true},
		})
	})
	mux.HandleFunc("/services/secure", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer tok123" {
			w.WriteHeader(http.StatusUnauthorized)
			json.NewEncoder(w).Encode(map[string]any{"error": "no credentials", "status": 401})
			return
		}
		json.NewEncoder(w).Encode(core.ServiceDescription{Name: "secure"})
	})
	mux.HandleFunc("/services/broken", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(core.Job{
			ID: "b1", Service: "broken", State: core.StateError,
			Error: "adapter exploded",
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(404)
		json.NewEncoder(w).Encode(map[string]any{"error": "nope", "status": 404})
	})
	srv := httptest.NewServer(mux)
	srvURL = srv.URL
	t.Cleanup(srv.Close)
	return srv
}

func TestCallReturnsOutputs(t *testing.T) {
	srv := fakeService(t)
	out, err := New().Service(srv.URL+"/services/echo").Call(
		context.Background(), core.Values{"msg": "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if out["msg"] != "hi" {
		t.Errorf("out = %v", out)
	}
}

func TestErrorStateBecomesJobError(t *testing.T) {
	srv := fakeService(t)
	_, err := New().Service(srv.URL+"/services/broken").Call(
		context.Background(), core.Values{})
	var je *JobError
	if !asJobErr(err, &je) {
		t.Fatalf("err = %v, want JobError", err)
	}
	if !strings.Contains(je.Error(), "adapter exploded") {
		t.Errorf("JobError = %v", je)
	}
}

func asJobErr(err error, target **JobError) bool {
	for err != nil {
		if e, ok := err.(*JobError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestNotFoundMapsToAPIError(t *testing.T) {
	srv := fakeService(t)
	_, err := New().Service(srv.URL + "/services/missing").Describe(context.Background())
	if !IsNotFound(err) {
		t.Errorf("err = %v, want 404", err)
	}
}

func TestBearerTokenAttached(t *testing.T) {
	srv := fakeService(t)
	cl := New()
	if _, err := cl.Service(srv.URL + "/services/secure").Describe(context.Background()); err == nil {
		t.Error("unauthenticated describe succeeded")
	}
	cl.Token = "tok123"
	if _, err := cl.Service(srv.URL + "/services/secure").Describe(context.Background()); err != nil {
		t.Errorf("authenticated describe failed: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer slow.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New().Service(slow.URL).Describe(ctx)
	if err == nil {
		t.Fatal("describe against stalled server succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("context cancellation not honoured")
	}
}

func TestFetchFileRejectsNonRef(t *testing.T) {
	if _, err := New().FetchFile(context.Background(), "not a ref"); err == nil {
		t.Error("plain string accepted as file ref")
	}
}

// A server that ignores the wait query parameter and answers instantly with
// a non-terminal job must not be polled in a zero-delay busy loop: Wait
// enforces the client's minimum poll interval between windows.
func TestWaitEnforcesMinPollInterval(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests++
		mu.Unlock()
		json.NewEncoder(w).Encode(core.Job{ID: "j1", Service: "s", State: core.StateRunning})
	}))
	defer srv.Close()

	cl := New()
	cl.MinPoll = 25 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := cl.Service(srv.URL+"/services/s").Wait(ctx, srv.URL+"/services/s/jobs/j1"); err == nil {
		t.Fatal("Wait returned without a terminal state")
	}
	mu.Lock()
	got := requests
	mu.Unlock()
	// 200 ms / 25 ms ≈ 8 polls; a busy loop would make thousands.
	if got > 20 {
		t.Errorf("server polled %d times in 200ms despite a 25ms minimum interval", got)
	}
	if got < 2 {
		t.Errorf("server polled only %d times; Wait gave up too early", got)
	}
}

func TestAPIErrorMessage(t *testing.T) {
	err := &APIError{Status: 409, Message: "queue full"}
	if !strings.Contains(err.Error(), "409") || !strings.Contains(err.Error(), "queue full") {
		t.Errorf("message = %q", err.Error())
	}
}
