package cas

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mathcloud/internal/ratmat"
)

func evalOK(t *testing.T, src string, env Env) Value {
	t.Helper()
	v, err := Eval(src, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestScalarArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1 + 2 * 3", "7"},
		{"(1 + 2) * 3", "9"},
		{"1/2 + 1/3", "5/6"},
		{"-3 + 1", "-2"},
		{"2 * -3", "-6"},
		{"10 - 4 - 3", "3"},
	}
	for _, tc := range cases {
		v := evalOK(t, tc.src, nil)
		if !v.IsScalar() || v.Scalar.RatString() != tc.want {
			t.Errorf("Eval(%q) = %s, want %s", tc.src, v, tc.want)
		}
	}
}

func TestMatrixExpressions(t *testing.T) {
	v := evalOK(t, "invert(hilbert(4)) * hilbert(4)", nil)
	if v.IsScalar() || !v.Matrix.IsIdentity() {
		t.Error("H⁻¹·H is not the identity")
	}

	v = evalOK(t, "hilbert(3) - hilbert(3)", nil)
	if !v.Matrix.Equal(ratmat.New(3, 3)) {
		t.Error("H - H is not zero")
	}

	v = evalOK(t, "2 * identity(3)", nil)
	if v.Matrix.At(0, 0).Cmp(big.NewRat(2, 1)) != 0 {
		t.Error("scalar-matrix product wrong")
	}

	v = evalOK(t, "trace(identity(5))", nil)
	if !v.IsScalar() || v.Scalar.RatString() != "5" {
		t.Errorf("trace = %s, want 5", v)
	}

	v = evalOK(t, "hilbert(4)'", nil)
	if !v.Matrix.Equal(ratmat.Hilbert(4)) {
		t.Error("Hilbert transpose should equal itself (symmetric)")
	}
}

func TestSubmatrixAssemble(t *testing.T) {
	env := Env{"M": {Matrix: ratmat.Hilbert(6)}}
	v := evalOK(t,
		"assemble(submatrix(M,0,3,0,3), submatrix(M,0,3,3,6), submatrix(M,3,6,0,3), submatrix(M,3,6,3,6))",
		env)
	if !v.Matrix.Equal(ratmat.Hilbert(6)) {
		t.Error("submatrix/assemble round trip failed")
	}
}

func TestEnvironmentVariables(t *testing.T) {
	env := MatrixEnv(map[string]*ratmat.Matrix{"A": ratmat.Identity(2)})
	v := evalOK(t, "A + A", env)
	want := ratmat.Identity(2).Scale(big.NewRat(2, 1))
	if !v.Matrix.Equal(want) {
		t.Error("A + A wrong")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "unexpected"},
		{"foo", `undefined variable "foo"`},
		{"frob(1)", `unknown function "frob"`},
		{"hilbert(0)", "out of range"},
		{"hilbert(1) + 1", "scalar and matrix"},
		{"invert(hilbert(2) - hilbert(2))", "singular"},
		{"hilbert(2) * hilbert(3)", "inner dimensions"},
		{"trace(zeros(2,3))", "non-square"},
		{"1 +", "unexpected"},
		{"(1", "expected ')'"},
		{"3'", "cannot transpose a scalar"},
		{"hilbert(1) @", "unexpected character"},
		{"invert(2)", "must be a matrix"},
		{"hilbert(hilbert(1))", "must be an integer"},
	}
	for _, tc := range cases {
		_, err := Eval(tc.src, nil)
		if err == nil {
			t.Errorf("Eval(%q) succeeded, want error %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Eval(%q) error = %q, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestDeterminantAndRank(t *testing.T) {
	// det(hilbert(3)) = 1/2160.
	v := evalOK(t, "det(hilbert(3))", nil)
	if !v.IsScalar() || v.Scalar.RatString() != "1/2160" {
		t.Errorf("det = %s, want 1/2160", v)
	}
	v = evalOK(t, "det(identity(5))", nil)
	if v.Scalar.RatString() != "1" {
		t.Errorf("det(I) = %s", v)
	}
	v = evalOK(t, "det(hilbert(3) - hilbert(3))", nil)
	if v.Scalar.RatString() != "0" {
		t.Errorf("det(0) = %s", v)
	}
	v = evalOK(t, "rank(hilbert(4))", nil)
	if v.Scalar.RatString() != "4" {
		t.Errorf("rank(H4) = %s", v)
	}
	v = evalOK(t, "rank(zeros(3,5))", nil)
	if v.Scalar.RatString() != "0" {
		t.Errorf("rank(0) = %s", v)
	}
	if _, err := Eval("det(zeros(2,3))", nil); err == nil {
		t.Error("det of non-square accepted")
	}
}

// TestPropertyEvalNeverPanics throws random expression soup at the CAS:
// parse/eval must reject or succeed, never panic.
func TestPropertyEvalNeverPanics(t *testing.T) {
	fragments := []string{
		"hilbert", "identity", "invert", "trace", "det", "rank", "zeros",
		"submatrix", "assemble", "transpose", "dim", "A", "B", "x",
		"1", "2", "1/2", "3.5", "(", ")", ",", "+", "-", "*", "'",
	}
	env := MatrixEnv(map[string]*ratmat.Matrix{"A": ratmat.Hilbert(2), "B": ratmat.Identity(2)})
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("cas panicked: %v", r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = fragments[rng.Intn(len(fragments))]
		}
		_, _ = Eval(strings.Join(parts, " "), env)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
