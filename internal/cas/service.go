package cas

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
	"mathcloud/internal/ratmat"
)

// This file exposes the CAS as a computational web service, the role
// Maxima plays in the paper.  The service takes a command expression plus
// up to four matrix operands (A..D) and returns the evaluated result.
// Matrices are passed as exact JSON values ([["p/q", ...], ...]).

// EvalFuncName is the native-adapter function name of the CAS evaluator.
const EvalFuncName = "cas.eval"

// matrixSchema describes a matrix parameter: an array of rows of exact
// rational strings, tagged with format "matrix" so that workflow port
// checks distinguish matrices from other arrays.
const matrixSchemaJSON = `{
  "type": "array",
  "title": "matrix",
  "format": "matrix",
  "items": {"type": "array", "items": {"type": "string"}}
}`

// MatrixSchema returns a fresh schema value describing a matrix parameter.
func MatrixSchema() *jsonschema.Schema { return jsonschema.MustParse(matrixSchemaJSON) }

// operand parameter names accepted by the CAS service.
var operandNames = []string{"A", "B", "C", "D"}

// FileThreshold is the text-encoding size above which a matrix result is
// returned as a file resource instead of an inline JSON value, following
// the unified API's prescription for large data.  In the paper's runs the
// symbolic intermediate results reached hundreds of megabytes and always
// travelled as files.
const FileThreshold = 1 << 18

// evalRequest is the file-aware adapter function behind the CAS service.
// Matrix operands arrive either as inline JSON values or as file
// references (staged by the container into req.Files, in the ratmat text
// codec); large matrix results leave as file resources.
func evalRequest(_ context.Context, req *adapter.Request) (*adapter.Result, error) {
	inputs := req.Inputs
	exprVal, ok := inputs["expr"].(string)
	if !ok || exprVal == "" {
		return nil, fmt.Errorf("cas: missing expression")
	}
	env := Env{}
	for _, name := range operandNames {
		if path, staged := req.Files[name]; staged {
			f, err := os.Open(path)
			if err != nil {
				return nil, fmt.Errorf("cas: operand %s: %w", name, err)
			}
			m, err := ratmat.ReadText(f)
			_ = f.Close()
			if err != nil {
				return nil, fmt.Errorf("cas: operand %s: %w", name, err)
			}
			env[name] = Value{Matrix: m}
			continue
		}
		v, present := inputs[name]
		if !present || v == nil {
			continue
		}
		m, err := ratmat.FromJSON(v)
		if err != nil {
			return nil, fmt.Errorf("cas: operand %s: %w", name, err)
		}
		env[name] = Value{Matrix: m}
	}
	out, err := Eval(exprVal, env)
	if err != nil {
		return nil, err
	}
	if out.IsScalar() {
		return &adapter.Result{
			Outputs: core.Values{"result": out.Scalar.RatString(), "scalar": true},
		}, nil
	}
	if req.WorkDir != "" && out.Matrix.TextSize() > FileThreshold {
		path := filepath.Join(req.WorkDir, "result.mat")
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("cas: write result: %w", err)
		}
		err = out.Matrix.WriteText(f)
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return nil, fmt.Errorf("cas: write result: %w", err)
		}
		return &adapter.Result{
			Outputs: core.Values{"scalar": false},
			Files:   map[string]string{"result": path},
		}, nil
	}
	return &adapter.Result{
		Outputs: core.Values{"result": out.Matrix.ToJSON(), "scalar": false},
	}, nil
}

// Register registers the CAS evaluator in the native-function registry.
// It is idempotent.
func Register() {
	adapter.RegisterRequestFunc(EvalFuncName, evalRequest)
}

// ServiceConfig returns the deployable configuration of a CAS service with
// the given service name, mirroring how one Maxima installation is
// published as one service.
func ServiceConfig(name string) container.ServiceConfig {
	return ServiceConfigSlow(name, 0)
}

// ServiceConfigSlow is ServiceConfig with a simulated hardware slowdown
// factor (see adapter.NativeConfig.SimulatedSlowdown): the performance
// experiments use it to model CAS installations on remote machines.
func ServiceConfigSlow(name string, slowdown float64) container.ServiceConfig {
	matrixParam := func(p string) core.Param {
		return core.Param{
			Name:     p,
			Title:    "matrix operand " + p,
			Schema:   MatrixSchema(),
			Optional: true,
		}
	}
	return container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        name,
			Title:       "Computer algebra service",
			Description: "Evaluates exact rational matrix expressions (invert, multiply, transpose, Hilbert matrices and friends) — the error-free computer algebra back end of the distributed matrix inversion application.",
			Version:     "1.0",
			Tags:        []string{"cas", "matrix", "exact", "algebra"},
			// Exact rational evaluation is pure: identical expressions and
			// operands always produce identical results, so submissions are
			// memoizable and federation-wide result reuse applies.
			Deterministic: true,
			Inputs: []core.Param{
				{
					Name:   "expr",
					Title:  "expression to evaluate",
					Schema: jsonschema.MustParse(`{"type": "string", "minLength": 1}`),
				},
				matrixParam("A"), matrixParam("B"), matrixParam("C"), matrixParam("D"),
			},
			Outputs: []core.Param{
				{Name: "result", Title: "evaluation result"},
				{Name: "scalar", Title: "whether the result is a scalar",
					Schema: jsonschema.MustParse(`{"type": "boolean"}`), Optional: true},
			},
		},
		Adapter: container.AdapterSpec{
			Kind: "native",
			Config: []byte(fmt.Sprintf(`{"function": %q, "simulatedSlowdown": %g}`,
				EvalFuncName, slowdown)),
		},
	}
}

// Deploy registers the evaluator function and deploys count CAS services
// named base, base-2, ... into the container, returning their names.
// Deploying several instances models a pool of CAS installations that the
// block-inversion workflow can fan out over.
func Deploy(c *container.Container, base string, count int) ([]string, error) {
	return DeploySlow(c, base, count, 0)
}

// DeploySlow is Deploy with a simulated hardware slowdown factor per
// service.
func DeploySlow(c *container.Container, base string, count int, slowdown float64) ([]string, error) {
	Register()
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		name := base
		if i > 0 {
			name = fmt.Sprintf("%s-%d", base, i+1)
		}
		if err := c.Deploy(ServiceConfigSlow(name, slowdown)); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}
