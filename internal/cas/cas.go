// Package cas implements a small computer-algebra command language over
// exact rational matrices.  In the paper, the Maxima CAS is exposed as a
// computational web service and the distributed matrix-inversion workflow
// sends it symbolic commands; this package plays Maxima's role: a parsed,
// evaluated expression language (exact rational arithmetic, matrix
// operators and functions) fronted by the same kind of service.
//
// Grammar:
//
//	expr    := term (('+' | '-') term)*
//	term    := factor ('*' factor)*
//	factor  := '-' factor | postfix
//	postfix := primary ("'")*            (' is transpose)
//	primary := NUMBER | IDENT | IDENT '(' args ')' | '(' expr ')'
//
// Values are exact rational scalars or matrices.  Built-in functions:
// hilbert(n), identity(n), zeros(r, c), invert(M), transpose(M),
// submatrix(M, r0, r1, c0, c1), assemble(A, B, C, D), trace(M), det(M),
// rank(M), dim(M).
package cas

import (
	"fmt"
	"math/big"
	"strings"
	"unicode"

	"mathcloud/internal/ratmat"
)

// Value is a CAS value: a *big.Rat scalar or a *ratmat.Matrix.
type Value struct {
	Scalar *big.Rat
	Matrix *ratmat.Matrix
}

// IsScalar reports whether the value is a scalar.
func (v Value) IsScalar() bool { return v.Scalar != nil }

// String renders the value.
func (v Value) String() string {
	if v.IsScalar() {
		return v.Scalar.RatString()
	}
	return strings.TrimRight(v.Matrix.String(), "\n")
}

// Env binds free identifiers to values during evaluation.
type Env map[string]Value

// MatrixEnv builds an environment of matrix bindings.
func MatrixEnv(ms map[string]*ratmat.Matrix) Env {
	env := make(Env, len(ms))
	for k, m := range ms {
		env[k] = Value{Matrix: m}
	}
	return env
}

// Error is a CAS parse or evaluation error with position information.
type Error struct {
	Pos     int
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("cas: at %d: %s", e.Pos, e.Message) }

func errAt(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// ---- lexer ----

type casTokKind int

const (
	casEOF casTokKind = iota
	casNum
	casIdent
	casOp
)

type casTok struct {
	kind casTokKind
	text string
	pos  int
}

func lex(src string) ([]casTok, error) {
	var toks []casTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '/' || src[i] == '.') {
				i++
			}
			toks = append(toks, casTok{casNum, src[start:i], start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, casTok{casIdent, src[start:i], start})
		case strings.IndexByte("+-*()',", c) >= 0:
			toks = append(toks, casTok{casOp, string(c), i})
			i++
		default:
			return nil, errAt(i, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, casTok{casEOF, "", len(src)})
	return toks, nil
}

// ---- parser / evaluator (direct interpretation) ----

type casParser struct {
	toks []casTok
	pos  int
	env  Env
}

// Eval parses and evaluates a CAS expression in the given environment.
func Eval(src string, env Env) (Value, error) {
	toks, err := lex(src)
	if err != nil {
		return Value{}, err
	}
	p := &casParser{toks: toks, env: env}
	v, err := p.expr()
	if err != nil {
		return Value{}, err
	}
	if t := p.peek(); t.kind != casEOF {
		return Value{}, errAt(t.pos, "unexpected %q after expression", t.text)
	}
	return v, nil
}

func (p *casParser) peek() casTok { return p.toks[p.pos] }

func (p *casParser) next() casTok {
	t := p.toks[p.pos]
	if t.kind != casEOF {
		p.pos++
	}
	return t
}

func (p *casParser) atOp(op string) bool {
	t := p.peek()
	return t.kind == casOp && t.text == op
}

func (p *casParser) expr() (Value, error) {
	left, err := p.term()
	if err != nil {
		return Value{}, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next()
		right, err := p.term()
		if err != nil {
			return Value{}, err
		}
		left, err = apply2(op.text, left, right, op.pos)
		if err != nil {
			return Value{}, err
		}
	}
	return left, nil
}

func (p *casParser) term() (Value, error) {
	left, err := p.factor()
	if err != nil {
		return Value{}, err
	}
	for p.atOp("*") {
		op := p.next()
		right, err := p.factor()
		if err != nil {
			return Value{}, err
		}
		left, err = apply2("*", left, right, op.pos)
		if err != nil {
			return Value{}, err
		}
	}
	return left, nil
}

func (p *casParser) factor() (Value, error) {
	if p.atOp("-") {
		p.next()
		v, err := p.factor()
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar() {
			return Value{Scalar: new(big.Rat).Neg(v.Scalar)}, nil
		}
		return Value{Matrix: v.Matrix.Neg()}, nil
	}
	return p.postfix()
}

func (p *casParser) postfix() (Value, error) {
	v, err := p.primary()
	if err != nil {
		return Value{}, err
	}
	for p.atOp("'") {
		t := p.next()
		if v.IsScalar() {
			return Value{}, errAt(t.pos, "cannot transpose a scalar")
		}
		v = Value{Matrix: v.Matrix.Transpose()}
	}
	return v, nil
}

func (p *casParser) primary() (Value, error) {
	t := p.next()
	switch {
	case t.kind == casNum:
		r, ok := new(big.Rat).SetString(t.text)
		if !ok {
			return Value{}, errAt(t.pos, "invalid number %q", t.text)
		}
		return Value{Scalar: r}, nil
	case t.kind == casIdent && p.atOp("("):
		p.next() // consume '('
		var args []Value
		for !p.atOp(")") {
			a, err := p.expr()
			if err != nil {
				return Value{}, err
			}
			args = append(args, a)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
		if !p.atOp(")") {
			return Value{}, errAt(p.peek().pos, "expected ')'")
		}
		p.next()
		return callFunc(t.text, args, t.pos)
	case t.kind == casIdent:
		v, ok := p.env[t.text]
		if !ok {
			return Value{}, errAt(t.pos, "undefined variable %q", t.text)
		}
		return v, nil
	case t.kind == casOp && t.text == "(":
		v, err := p.expr()
		if err != nil {
			return Value{}, err
		}
		if !p.atOp(")") {
			return Value{}, errAt(p.peek().pos, "expected ')'")
		}
		p.next()
		return v, nil
	default:
		return Value{}, errAt(t.pos, "unexpected %q", t.text)
	}
}

func apply2(op string, a, b Value, pos int) (Value, error) {
	switch {
	case a.IsScalar() && b.IsScalar():
		r := new(big.Rat)
		switch op {
		case "+":
			r.Add(a.Scalar, b.Scalar)
		case "-":
			r.Sub(a.Scalar, b.Scalar)
		case "*":
			r.Mul(a.Scalar, b.Scalar)
		}
		return Value{Scalar: r}, nil
	case op == "*" && a.IsScalar():
		return Value{Matrix: b.Matrix.Scale(a.Scalar)}, nil
	case op == "*" && b.IsScalar():
		return Value{Matrix: a.Matrix.Scale(b.Scalar)}, nil
	case !a.IsScalar() && !b.IsScalar():
		var m *ratmat.Matrix
		var err error
		switch op {
		case "+":
			m, err = a.Matrix.Add(b.Matrix)
		case "-":
			m, err = a.Matrix.Sub(b.Matrix)
		case "*":
			m, err = a.Matrix.Mul(b.Matrix)
		}
		if err != nil {
			return Value{}, errAt(pos, "%v", err)
		}
		return Value{Matrix: m}, nil
	default:
		return Value{}, errAt(pos, "operator %q between scalar and matrix", op)
	}
}

func callFunc(name string, args []Value, pos int) (Value, error) {
	scalarInt := func(i int) (int, error) {
		if i >= len(args) || !args[i].IsScalar() || !args[i].Scalar.IsInt() {
			return 0, errAt(pos, "%s: argument %d must be an integer", name, i+1)
		}
		return int(args[i].Scalar.Num().Int64()), nil
	}
	matrixArg := func(i int) (*ratmat.Matrix, error) {
		if i >= len(args) || args[i].IsScalar() {
			return nil, errAt(pos, "%s: argument %d must be a matrix", name, i+1)
		}
		return args[i].Matrix, nil
	}
	switch name {
	case "hilbert":
		n, err := scalarInt(0)
		if err != nil {
			return Value{}, err
		}
		if n <= 0 || n > 4096 {
			return Value{}, errAt(pos, "hilbert: order %d out of range", n)
		}
		return Value{Matrix: ratmat.Hilbert(n)}, nil
	case "identity":
		n, err := scalarInt(0)
		if err != nil {
			return Value{}, err
		}
		if n <= 0 || n > 4096 {
			return Value{}, errAt(pos, "identity: order %d out of range", n)
		}
		return Value{Matrix: ratmat.Identity(n)}, nil
	case "zeros":
		r, err := scalarInt(0)
		if err != nil {
			return Value{}, err
		}
		c, err := scalarInt(1)
		if err != nil {
			return Value{}, err
		}
		if r <= 0 || c <= 0 || r > 4096 || c > 4096 {
			return Value{}, errAt(pos, "zeros: shape %dx%d out of range", r, c)
		}
		return Value{Matrix: ratmat.New(r, c)}, nil
	case "invert":
		m, err := matrixArg(0)
		if err != nil {
			return Value{}, err
		}
		inv, err := m.Inverse()
		if err != nil {
			return Value{}, errAt(pos, "%v", err)
		}
		return Value{Matrix: inv}, nil
	case "transpose":
		m, err := matrixArg(0)
		if err != nil {
			return Value{}, err
		}
		return Value{Matrix: m.Transpose()}, nil
	case "submatrix":
		m, err := matrixArg(0)
		if err != nil {
			return Value{}, err
		}
		var idx [4]int
		for i := 0; i < 4; i++ {
			idx[i], err = scalarInt(i + 1)
			if err != nil {
				return Value{}, err
			}
		}
		sub, err := m.Submatrix(idx[0], idx[1], idx[2], idx[3])
		if err != nil {
			return Value{}, errAt(pos, "%v", err)
		}
		return Value{Matrix: sub}, nil
	case "assemble":
		var ms [4]*ratmat.Matrix
		var err error
		for i := 0; i < 4; i++ {
			ms[i], err = matrixArg(i)
			if err != nil {
				return Value{}, err
			}
		}
		out, err := ratmat.Assemble(ms[0], ms[1], ms[2], ms[3])
		if err != nil {
			return Value{}, errAt(pos, "%v", err)
		}
		return Value{Matrix: out}, nil
	case "det":
		m, err := matrixArg(0)
		if err != nil {
			return Value{}, err
		}
		d, err := m.Determinant()
		if err != nil {
			return Value{}, errAt(pos, "%v", err)
		}
		return Value{Scalar: d}, nil
	case "rank":
		m, err := matrixArg(0)
		if err != nil {
			return Value{}, err
		}
		return Value{Scalar: new(big.Rat).SetInt64(int64(m.Rank()))}, nil
	case "trace":
		m, err := matrixArg(0)
		if err != nil {
			return Value{}, err
		}
		if m.Rows() != m.Cols() {
			return Value{}, errAt(pos, "trace of non-square matrix")
		}
		tr := new(big.Rat)
		for i := 0; i < m.Rows(); i++ {
			tr.Add(tr, m.At(i, i))
		}
		return Value{Scalar: tr}, nil
	case "dim":
		m, err := matrixArg(0)
		if err != nil {
			return Value{}, err
		}
		return Value{Scalar: new(big.Rat).SetInt64(int64(m.Rows()))}, nil
	default:
		return Value{}, errAt(pos, "unknown function %q", name)
	}
}
