// Package workflow implements the MathCloud workflow management system:
// description, validation, storage, publication and execution of workflows
// composed of computational web services.
//
// A workflow is a directed acyclic graph whose vertices are blocks and
// whose edges define data flow, as in the paper's Fig. 2.  Input and Output
// blocks carry the workflow's own parameters; Service blocks call a
// computational web service through the unified REST API, with ports
// generated from the service description retrieved at composition time;
// Script blocks run custom MCScript actions.  Port connections are checked
// for data-type compatibility using the parameters' JSON Schemas.  A saved
// workflow is published as a new composite service, and executing it sends
// a request to that service.
package workflow

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
	"mathcloud/internal/script"
)

// BlockType enumerates the block kinds of the workflow editor.
type BlockType string

// Block kinds.
const (
	// BlockInput is a workflow input parameter: one output port "value".
	BlockInput BlockType = "input"
	// BlockOutput is a workflow output parameter: one input port "value".
	BlockOutput BlockType = "output"
	// BlockService calls a computational web service; its ports come
	// from the service description.
	BlockService BlockType = "service"
	// BlockScript runs a custom MCScript action with declared ports.
	BlockScript BlockType = "script"
	// BlockConst produces a fixed value on its output port "value".
	BlockConst BlockType = "const"
)

// PortDecl declares one port of a script block.
type PortDecl struct {
	Name   string             `json:"name"`
	Schema *jsonschema.Schema `json:"schema,omitempty"`
}

// Block is one vertex of the workflow graph.
type Block struct {
	// ID is the block identifier, unique within the workflow.
	ID string `json:"id"`
	// Type selects the block kind.
	Type BlockType `json:"type"`
	// Title is an optional display label.
	Title string `json:"title,omitempty"`

	// Name is the workflow parameter name for input/output blocks.
	Name string `json:"name,omitempty"`
	// Schema types the value of input, output and const blocks.
	Schema *jsonschema.Schema `json:"schema,omitempty"`
	// Optional marks input blocks whose value may be omitted.
	Optional bool `json:"optional,omitempty"`
	// Default is the default for an optional input block.
	Default any `json:"default,omitempty"`

	// Service is the URI of the called service, for service blocks.
	Service string `json:"service,omitempty"`
	// Params binds fixed values to service input ports, so constants do
	// not need edges.
	Params core.Values `json:"params,omitempty"`

	// Script is the MCScript source, for script blocks.
	Script string `json:"script,omitempty"`
	// Inputs and Outputs declare script block ports.
	Inputs  []PortDecl `json:"inputs,omitempty"`
	Outputs []PortDecl `json:"outputs,omitempty"`

	// Value is the fixed value of a const block.
	Value any `json:"value,omitempty"`
}

// PortRef identifies one port of one block.
type PortRef struct {
	Block string `json:"block"`
	Port  string `json:"port"`
}

// String renders the reference as "block.port".
func (p PortRef) String() string { return p.Block + "." + p.Port }

// Edge is a data-flow connection between an output port and an input port.
type Edge struct {
	From PortRef `json:"from"`
	To   PortRef `json:"to"`
}

// Workflow is a complete workflow document, the JSON format the editor
// downloads and uploads.
type Workflow struct {
	// Name is the identifier the workflow is published under.
	Name        string `json:"name"`
	Title       string `json:"title,omitempty"`
	Description string `json:"description,omitempty"`
	// Memo opts the published composite service into per-service-block
	// memoization: across requests, service blocks that are called with
	// identical inputs reuse the recorded outputs instead of re-invoking
	// the service.  Only meaningful when every called service is
	// deterministic; block outputs holding file references are not cached.
	Memo   bool    `json:"memo,omitempty"`
	Blocks []Block `json:"blocks"`
	Edges  []Edge  `json:"edges"`
}

// Parse decodes a workflow document from JSON.
func Parse(data []byte) (*Workflow, error) {
	var wf Workflow
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wf); err != nil {
		return nil, fmt.Errorf("workflow: parse: %w", err)
	}
	return &wf, nil
}

// Encode serializes the workflow document to indented JSON.
func (w *Workflow) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workflow: encode: %w", err)
	}
	return data, nil
}

// Block returns the block with the given ID.
func (w *Workflow) Block(id string) (*Block, bool) {
	for i := range w.Blocks {
		if w.Blocks[i].ID == id {
			return &w.Blocks[i], true
		}
	}
	return nil, false
}

// ServiceURIs returns the distinct service URIs referenced by the
// workflow, sorted.
func (w *Workflow) ServiceURIs() []string {
	seen := make(map[string]bool)
	for _, b := range w.Blocks {
		if b.Type == BlockService && b.Service != "" {
			seen[b.Service] = true
		}
	}
	uris := make([]string, 0, len(seen))
	for u := range seen {
		uris = append(uris, u)
	}
	sort.Strings(uris)
	return uris
}

// port is a resolved port with its schema, produced during validation.
type port struct {
	ref      PortRef
	schema   *jsonschema.Schema
	optional bool
}

// resolved holds the validated static structure of a workflow: per-block
// ports, topological order and adjacency.
type resolved struct {
	wf *Workflow
	// inPorts and outPorts map block IDs to their ports by port name.
	inPorts  map[string]map[string]port
	outPorts map[string]map[string]port
	// incoming maps an input port to its single feeding edge.
	incoming map[PortRef]Edge
	// order is a deterministic topological order of block IDs.
	order []string
	// descriptions caches the service descriptions used for ports.
	descriptions map[string]core.ServiceDescription
	// programs caches compiled scripts per block ID.
	programs map[string]*script.Program
}

// Describer retrieves service descriptions during workflow validation,
// which is how the editor "dynamically retrieves service description and
// extracts information about the number, types and names of input and
// output parameters".
type Describer interface {
	Describe(serviceURI string) (core.ServiceDescription, error)
}

// ValidationError reports a workflow that fails static checks.
type ValidationError struct {
	Message string
}

// Error implements the error interface.
func (e *ValidationError) Error() string { return "workflow: invalid: " + e.Message }

func invalidf(format string, args ...any) error {
	return &ValidationError{Message: fmt.Sprintf(format, args...)}
}

// Validate statically checks the workflow: unique block IDs, well-formed
// blocks, edges between existing ports, single writer per input port,
// type-compatible connections, all mandatory ports fed, and acyclicity.
// It returns the resolved structure used by the engine.
func (w *Workflow) validate(desc Describer) (*resolved, error) {
	if strings.TrimSpace(w.Name) == "" {
		return nil, invalidf("empty workflow name")
	}
	r := &resolved{
		wf:           w,
		inPorts:      make(map[string]map[string]port),
		outPorts:     make(map[string]map[string]port),
		incoming:     make(map[PortRef]Edge),
		descriptions: make(map[string]core.ServiceDescription),
		programs:     make(map[string]*script.Program),
	}
	seen := make(map[string]bool)
	inputNames := make(map[string]bool)
	outputNames := make(map[string]bool)
	for i := range w.Blocks {
		b := &w.Blocks[i]
		if strings.TrimSpace(b.ID) == "" {
			return nil, invalidf("block %d has an empty id", i)
		}
		if strings.Contains(b.ID, ".") {
			return nil, invalidf("block id %q must not contain '.'", b.ID)
		}
		if seen[b.ID] {
			return nil, invalidf("duplicate block id %q", b.ID)
		}
		seen[b.ID] = true
		ins, outs, err := r.blockPorts(b, desc)
		if err != nil {
			return nil, err
		}
		r.inPorts[b.ID] = ins
		r.outPorts[b.ID] = outs
		switch b.Type {
		case BlockInput:
			if inputNames[b.Name] {
				return nil, invalidf("duplicate workflow input %q", b.Name)
			}
			inputNames[b.Name] = true
		case BlockOutput:
			if outputNames[b.Name] {
				return nil, invalidf("duplicate workflow output %q", b.Name)
			}
			outputNames[b.Name] = true
		}
	}

	for _, e := range w.Edges {
		fromPorts, ok := r.outPorts[e.From.Block]
		if !ok {
			return nil, invalidf("edge from unknown block %q", e.From.Block)
		}
		from, ok := fromPorts[e.From.Port]
		if !ok {
			return nil, invalidf("edge from unknown port %s", e.From)
		}
		toPorts, ok := r.inPorts[e.To.Block]
		if !ok {
			return nil, invalidf("edge to unknown block %q", e.To.Block)
		}
		to, ok := toPorts[e.To.Port]
		if !ok {
			return nil, invalidf("edge to unknown port %s", e.To)
		}
		if _, dup := r.incoming[e.To]; dup {
			return nil, invalidf("input port %s has multiple incoming edges", e.To)
		}
		if !jsonschema.Compatible(from.schema, to.schema) {
			return nil, invalidf("incompatible connection %s (%s) -> %s (%s)",
				e.From, from.schema.String(), e.To, to.schema.String())
		}
		r.incoming[e.To] = e
	}

	// Every mandatory input port must be fed by an edge, a constant
	// parameter binding or (for input blocks) the request itself.
	for blockID, ports := range r.inPorts {
		b, _ := w.Block(blockID)
		for name, p := range ports {
			if _, fed := r.incoming[p.ref]; fed {
				continue
			}
			if b.Type == BlockService {
				if _, bound := b.Params[name]; bound {
					continue
				}
			}
			if p.optional {
				continue
			}
			return nil, invalidf("mandatory input port %s is not connected", p.ref)
		}
	}

	order, err := r.topoSort()
	if err != nil {
		return nil, err
	}
	r.order = order
	return r, nil
}

// blockPorts derives the input and output ports of one block.
func (r *resolved) blockPorts(b *Block, desc Describer) (ins, outs map[string]port, err error) {
	ins = make(map[string]port)
	outs = make(map[string]port)
	mk := func(name string, schema *jsonschema.Schema, optional bool) port {
		return port{ref: PortRef{Block: b.ID, Port: name}, schema: schema, optional: optional}
	}
	switch b.Type {
	case BlockInput:
		if strings.TrimSpace(b.Name) == "" {
			return nil, nil, invalidf("input block %q has no parameter name", b.ID)
		}
		outs["value"] = mk("value", b.Schema, false)
	case BlockOutput:
		if strings.TrimSpace(b.Name) == "" {
			return nil, nil, invalidf("output block %q has no parameter name", b.ID)
		}
		ins["value"] = mk("value", b.Schema, false)
	case BlockConst:
		outs["value"] = mk("value", b.Schema, false)
	case BlockService:
		if strings.TrimSpace(b.Service) == "" {
			return nil, nil, invalidf("service block %q has no service URI", b.ID)
		}
		d, ok := r.descriptions[b.Service]
		if !ok {
			if desc == nil {
				return nil, nil, invalidf("service block %q needs a describer to resolve %q",
					b.ID, b.Service)
			}
			var err error
			d, err = desc.Describe(b.Service)
			if err != nil {
				return nil, nil, fmt.Errorf("workflow: block %q: describe %s: %w",
					b.ID, b.Service, err)
			}
			r.descriptions[b.Service] = d
		}
		for _, p := range d.Inputs {
			optional := p.Optional || (p.Schema != nil && p.Schema.HasDefault)
			ins[p.Name] = mk(p.Name, p.Schema, optional)
		}
		for _, p := range d.Outputs {
			outs[p.Name] = mk(p.Name, p.Schema, p.Optional)
		}
		for name := range b.Params {
			if _, ok := ins[name]; !ok {
				return nil, nil, invalidf("block %q binds unknown parameter %q", b.ID, name)
			}
		}
	case BlockScript:
		prog, err := script.Parse(b.Script)
		if err != nil {
			return nil, nil, fmt.Errorf("workflow: block %q: %w", b.ID, err)
		}
		r.programs[b.ID] = prog
		for _, p := range b.Inputs {
			ins[p.Name] = mk(p.Name, p.Schema, false)
		}
		for _, p := range b.Outputs {
			outs[p.Name] = mk(p.Name, p.Schema, false)
		}
	default:
		return nil, nil, invalidf("block %q has unknown type %q", b.ID, b.Type)
	}
	return ins, outs, nil
}

// topoSort returns a deterministic topological order of the block IDs, or
// an error naming a block on a cycle.
func (r *resolved) topoSort() ([]string, error) {
	// Build predecessor counts at block granularity.
	preds := make(map[string]map[string]bool) // block -> set of predecessor blocks
	ids := make([]string, 0, len(r.wf.Blocks))
	for _, b := range r.wf.Blocks {
		ids = append(ids, b.ID)
		preds[b.ID] = make(map[string]bool)
	}
	sort.Strings(ids)
	for _, e := range r.wf.Edges {
		if e.From.Block != e.To.Block {
			preds[e.To.Block][e.From.Block] = true
		} else {
			return nil, invalidf("block %q feeds itself", e.From.Block)
		}
	}
	var order []string
	done := make(map[string]bool)
	for len(order) < len(ids) {
		progressed := false
		for _, id := range ids {
			if done[id] {
				continue
			}
			ready := true
			for p := range preds[id] {
				if !done[p] {
					ready = false
					break
				}
			}
			if ready {
				done[id] = true
				order = append(order, id)
				progressed = true
			}
		}
		if !progressed {
			var cyclic []string
			for _, id := range ids {
				if !done[id] {
					cyclic = append(cyclic, id)
				}
			}
			return nil, invalidf("workflow graph has a cycle through %v", cyclic)
		}
	}
	return order, nil
}

// Check validates the workflow against the given describer without
// executing it, returning the first problem found.
func (w *Workflow) Check(desc Describer) error {
	_, err := w.validate(desc)
	return err
}

// CompositeDescription derives the service description of the composite
// service publishing this workflow: the workflow's input blocks become
// service inputs and output blocks become service outputs.
func (w *Workflow) CompositeDescription() core.ServiceDescription {
	d := core.ServiceDescription{
		Name:        w.Name,
		Title:       w.Title,
		Description: w.Description,
		Version:     "workflow",
		Tags:        []string{"workflow", "composite"},
	}
	for _, b := range w.Blocks {
		switch b.Type {
		case BlockInput:
			d.Inputs = append(d.Inputs, core.Param{
				Name: b.Name, Title: b.Title, Schema: b.Schema, Optional: b.Optional,
			})
		case BlockOutput:
			d.Outputs = append(d.Outputs, core.Param{
				Name: b.Name, Title: b.Title, Schema: b.Schema,
			})
		}
	}
	sort.Slice(d.Inputs, func(i, j int) bool { return d.Inputs[i].Name < d.Inputs[j].Name })
	sort.Slice(d.Outputs, func(i, j int) bool { return d.Outputs[i].Name < d.Outputs[j].Name })
	return d
}
