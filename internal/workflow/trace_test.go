package workflow_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
	"mathcloud/internal/obs"
	"mathcloud/internal/workflow"
)

// fakeRemoteService implements just enough of the unified REST API for one
// service ("inc": y = x+1) and records the X-Request-ID of every request.
type fakeRemoteService struct {
	mu  sync.Mutex
	ids []string
}

func (f *fakeRemoteService) record(r *http.Request) {
	f.mu.Lock()
	f.ids = append(f.ids, r.Header.Get(obs.RequestIDHeader))
	f.mu.Unlock()
}

func (f *fakeRemoteService) seen() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ids...)
}

func (f *fakeRemoteService) handler() http.Handler {
	num := jsonschema.New(jsonschema.TypeNumber)
	desc := core.ServiceDescription{
		Name:    "inc",
		Inputs:  []core.Param{{Name: "x", Schema: num}},
		Outputs: []core.Param{{Name: "y", Schema: num}},
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.record(r)
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(desc)
		case http.MethodPost:
			var in core.Values
			json.NewDecoder(r.Body).Decode(&in)
			x, _ := in["x"].(float64)
			job := core.Job{
				ID:      "remote-1",
				Service: "inc",
				State:   core.StateDone,
				Outputs: core.Values{"y": x + 1},
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(job)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
}

// TestWorkflowPropagatesIngressTraceID is the end-to-end tracing check: an
// X-Request-ID presented at the WMS ingress must reappear verbatim on the
// outbound HTTP calls a composite job makes to remote blocks, so one trace
// ID correlates the whole workflow fan-out across containers.
func TestWorkflowPropagatesIngressTraceID(t *testing.T) {
	remote := &fakeRemoteService{}
	remoteSrv := httptest.NewServer(remote.handler())
	defer remoteSrv.Close()

	d := startWMS(t)
	num := jsonschema.New(jsonschema.TypeNumber)
	wf := &workflow.Workflow{
		Name: "addtwo",
		Blocks: []workflow.Block{
			{ID: "x", Type: workflow.BlockInput, Name: "x", Schema: num},
			{ID: "i1", Type: workflow.BlockService, Service: remoteSrv.URL + "/services/inc"},
			{ID: "i2", Type: workflow.BlockService, Service: remoteSrv.URL + "/services/inc"},
			{ID: "out", Type: workflow.BlockOutput, Name: "y", Schema: num},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "x", Port: "value"}, To: workflow.PortRef{Block: "i1", Port: "x"}},
			{From: workflow.PortRef{Block: "i1", Port: "y"}, To: workflow.PortRef{Block: "i2", Port: "x"}},
			{From: workflow.PortRef{Block: "i2", Port: "y"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	if err := d.WMS.Save(wf); err != nil {
		t.Fatal(err)
	}

	const trace = "wf-trace-0123456789abcdef"
	req, err := http.NewRequest(http.MethodPost, d.BaseURL+"/services/addtwo?wait=10s",
		bytes.NewReader([]byte(`{"x": 5}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != core.StateDone || job.Outputs["y"] != 7.0 {
		t.Fatalf("job = %+v", job)
	}
	if job.TraceID != trace {
		t.Errorf("job.TraceID = %q, want the ingress ID", job.TraceID)
	}

	// The remote service saw validation-time description fetches (no trace
	// yet — Save happens outside any request) and the two execution-time
	// invocations, which must carry the ingress ID.
	ids := remote.seen()
	invocations := 0
	for _, id := range ids {
		if id == trace {
			invocations++
		}
	}
	if invocations < 2 {
		t.Errorf("outbound calls carrying the ingress trace ID = %d, want >= 2 (saw %v)",
			invocations, ids)
	}
}
