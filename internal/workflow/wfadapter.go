package workflow

import (
	"context"
	"encoding/json"
	"fmt"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
)

// AdapterConfig is the internal service configuration of the workflow
// adapter: the workflow document itself.  Deploying a service with this
// adapter is how a workflow is "published as a new composite service".
type AdapterConfig struct {
	Workflow *Workflow `json:"workflow"`
}

// Adapter executes a workflow per request — the workflow runtime embedded
// in the workflow management service.
type Adapter struct {
	wf        *Workflow
	compiled  *Compiled
	invoker   Invoker
	describer Describer
	// blocks is the shared per-service-block result cache, non-nil when
	// the workflow opted in with Memo: repeated requests to the composite
	// service reuse sub-computations across runs.
	blocks *BlockCache
}

// NewAdapterFactory returns an adapter.Factory for kind "workflow" bound
// to the given invoker and describer.  Workflows are validated against the
// live service descriptions at deployment time, so broken compositions are
// rejected before they are published.
func NewAdapterFactory(inv Invoker, desc Describer) adapter.Factory {
	return func(config json.RawMessage) (adapter.Interface, error) {
		var cfg AdapterConfig
		if err := json.Unmarshal(config, &cfg); err != nil {
			return nil, fmt.Errorf("workflow adapter: %w", err)
		}
		if cfg.Workflow == nil {
			return nil, fmt.Errorf("workflow adapter: missing workflow document")
		}
		c, err := Compile(cfg.Workflow, desc)
		if err != nil {
			return nil, err
		}
		a := &Adapter{wf: cfg.Workflow, compiled: c, invoker: inv, describer: desc}
		if cfg.Workflow.Memo {
			a.blocks = NewBlockCache(0)
		}
		return a, nil
	}
}

// Kind implements adapter.Interface.
func (a *Adapter) Kind() string { return "workflow" }

// ActForInvoker is implemented by invokers that can issue calls on behalf
// of a delegated user (see HTTPInvoker.ActingFor).
type ActForInvoker interface {
	Invoker
	ActingFor(user string) Invoker
}

// Invoke implements adapter.Interface: it runs the workflow with the job's
// inputs, forwarding per-block states into the job resource so clients can
// observe the execution progress of each block.  When the job carries an
// authenticated owner and the invoker supports delegation, every service
// call of the run is made on the owner's behalf — the paper's common use
// case for the proxying mechanism.
func (a *Adapter) Invoke(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
	invoker := a.invoker
	if req.Owner != "" {
		if af, ok := invoker.(ActForInvoker); ok {
			invoker = af.ActingFor(req.Owner)
		}
	}
	engine := &Engine{
		Invoker:    invoker,
		Describer:  a.describer,
		BlockCache: a.blocks,
		// Forward block transitions into the job resource twice over:
		// the Blocks map carries the *current* state (what the editor
		// paints), and the job log keeps the full transition history, so
		// clients can verify e.g. that a block ran even when it finished
		// between two polls.
		OnBlockState: func(block string, state core.JobState) {
			if req.SetBlockState != nil {
				req.SetBlockState(block, state)
			}
			if req.Progress != nil {
				req.Progress(fmt.Sprintf("block %s: %s", block, state))
			}
		},
	}
	outs, err := engine.RunCompiled(ctx, a.compiled, req.Inputs)
	if err != nil {
		return nil, err
	}
	return &adapter.Result{Outputs: outs}, nil
}

// Document returns the adapter's workflow document.
func (a *Adapter) Document() *Workflow { return a.wf }
