package workflow

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
)

// TestWideFanOutRunsAllBranchesConcurrently is the engine parallelism
// barrier test: every independent branch of a width-4 fan-out must be in
// flight at the same time, otherwise the latch times out.
func TestWideFanOutRunsAllBranchesConcurrently(t *testing.T) {
	const width = 4
	inv := newFakeInvoker()
	var mu sync.Mutex
	arrived := 0
	release := make(chan struct{})
	inv.add("svc://latch", core.ServiceDescription{
		Name:    "latch",
		Inputs:  []core.Param{{Name: "x", Schema: numSchema()}},
		Outputs: []core.Param{{Name: "y", Schema: numSchema()}},
	}, func(in core.Values) (core.Values, error) {
		mu.Lock()
		arrived++
		if arrived == width {
			close(release)
		}
		n := arrived
		mu.Unlock()
		select {
		case <-release:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("barrier timeout: only %d of %d branches in flight", n, width)
		}
		return core.Values{"y": in["x"].(float64)}, nil
	})

	wf := &Workflow{
		Name:   "fanout",
		Blocks: []Block{{ID: "x", Type: BlockInput, Name: "x", Schema: numSchema()}},
	}
	for i := 0; i < width; i++ {
		svcID := fmt.Sprintf("s%d", i)
		outName := fmt.Sprintf("o%d", i)
		wf.Blocks = append(wf.Blocks,
			Block{ID: svcID, Type: BlockService, Service: "svc://latch"},
			Block{ID: "out" + outName, Type: BlockOutput, Name: outName, Schema: numSchema()},
		)
		wf.Edges = append(wf.Edges,
			Edge{From: PortRef{"x", "value"}, To: PortRef{svcID, "x"}},
			Edge{From: PortRef{svcID, "y"}, To: PortRef{"out" + outName, "value"}},
		)
	}

	eng := &Engine{Invoker: inv, Describer: inv}
	outs, err := eng.Run(context.Background(), wf, core.Values{"x": 7.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < width; i++ {
		if outs[fmt.Sprintf("o%d", i)] != 7.0 {
			t.Fatalf("outputs = %v", outs)
		}
	}
	if inv.maxPar < width {
		t.Errorf("max parallel calls = %d, want >= %d", inv.maxPar, width)
	}
}

// countingInvoker wraps two deterministic services and records every call
// with its inputs, so tests can assert which sub-computations re-executed.
func countingInvoker() (*fakeInvoker, *[]string) {
	inv := newFakeInvoker()
	var calls []string
	record := func(s string) {
		inv.mu.Lock()
		calls = append(calls, s)
		inv.mu.Unlock()
	}
	inv.add("svc://cdouble", core.ServiceDescription{
		Name:    "cdouble",
		Inputs:  []core.Param{{Name: "x", Schema: numSchema()}},
		Outputs: []core.Param{{Name: "y", Schema: numSchema()}},
	}, func(in core.Values) (core.Values, error) {
		record(fmt.Sprintf("double(%v)", in["x"]))
		return core.Values{"y": 2 * in["x"].(float64)}, nil
	})
	inv.add("svc://cadd", core.ServiceDescription{
		Name:    "cadd",
		Inputs:  []core.Param{{Name: "a", Schema: numSchema()}, {Name: "b", Schema: numSchema()}},
		Outputs: []core.Param{{Name: "sum", Schema: numSchema()}},
	}, func(in core.Values) (core.Values, error) {
		record(fmt.Sprintf("add(%v,%v)", in["a"], in["b"]))
		return core.Values{"sum": in["a"].(float64) + in["b"].(float64)}, nil
	})
	return inv, &calls
}

// memoDiamond is a -> double, b -> double, both -> add -> result.
func memoDiamond() *Workflow {
	return &Workflow{
		Name: "memo-diamond",
		Memo: true,
		Blocks: []Block{
			{ID: "a", Type: BlockInput, Name: "a", Schema: numSchema()},
			{ID: "b", Type: BlockInput, Name: "b", Schema: numSchema()},
			{ID: "da", Type: BlockService, Service: "svc://cdouble"},
			{ID: "db", Type: BlockService, Service: "svc://cdouble"},
			{ID: "plus", Type: BlockService, Service: "svc://cadd"},
			{ID: "result", Type: BlockOutput, Name: "result", Schema: numSchema()},
		},
		Edges: []Edge{
			{From: PortRef{"a", "value"}, To: PortRef{"da", "x"}},
			{From: PortRef{"b", "value"}, To: PortRef{"db", "x"}},
			{From: PortRef{"da", "y"}, To: PortRef{"plus", "a"}},
			{From: PortRef{"db", "y"}, To: PortRef{"plus", "b"}},
			{From: PortRef{"plus", "sum"}, To: PortRef{"result", "value"}},
		},
	}
}

// TestBlockCacheReexecutesOnlyAffectedSubgraph re-runs a workflow with one
// changed input and asserts the unchanged branch is served from the block
// cache while the changed branch and everything downstream re-executes.
func TestBlockCacheReexecutesOnlyAffectedSubgraph(t *testing.T) {
	inv, calls := countingInvoker()
	eng := &Engine{Invoker: inv, Describer: inv, BlockCache: NewBlockCache(0)}
	wf := memoDiamond()

	outs, err := eng.Run(context.Background(), wf, core.Values{"a": 1.0, "b": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if outs["result"] != 6.0 {
		t.Fatalf("first run result = %v, want 6", outs["result"])
	}
	if len(*calls) != 3 {
		t.Fatalf("cold run made %d calls %v, want 3", len(*calls), *calls)
	}

	// Identical inputs: the whole run is served from the cache.
	outs, err = eng.Run(context.Background(), wf, core.Values{"a": 1.0, "b": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if outs["result"] != 6.0 || len(*calls) != 3 {
		t.Fatalf("repeat run: result=%v calls=%v, want cached 6 with no new calls",
			outs["result"], *calls)
	}

	// Change b only: double(1) must stay cached; double(5) and the add
	// (whose inputs changed) must execute.
	outs, err = eng.Run(context.Background(), wf, core.Values{"a": 1.0, "b": 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if outs["result"] != 12.0 {
		t.Fatalf("third run result = %v, want 12", outs["result"])
	}
	got := (*calls)[3:]
	counts := map[string]int{}
	for _, c := range got {
		counts[c]++
	}
	if len(got) != 2 || counts["double(5)"] != 1 || counts["add(2,10)"] != 1 {
		t.Fatalf("affected-subgraph calls = %v, want exactly double(5) and add(2,10)", got)
	}
}

// TestBlockCacheSkipsFileResults pins the safety rule that block results
// holding file references are never cached: the referenced job files may be
// purged between runs.
func TestBlockCacheSkipsFileResults(t *testing.T) {
	c := NewBlockCache(0)
	key, ok := c.key("svc://files", core.Values{"x": 1.0})
	if !ok {
		t.Fatal("key derivation failed")
	}
	c.store(key, core.Values{"data": core.FileRef("abc123")})
	if c.Len() != 0 {
		t.Fatalf("file-bearing result was cached (%d entries)", c.Len())
	}
	c.store(key, core.Values{"data": "plain"})
	if c.Len() != 1 {
		t.Fatalf("plain result not cached (%d entries)", c.Len())
	}
}

// TestBlockCacheBound asserts the LRU entry bound holds.
func TestBlockCacheBound(t *testing.T) {
	c := NewBlockCache(3)
	for i := 0; i < 10; i++ {
		key, _ := c.key("svc://x", core.Values{"i": float64(i)})
		c.store(key, core.Values{"v": float64(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, bound is 3", c.Len())
	}
	// The most recent entries survive.
	key9, _ := c.key("svc://x", core.Values{"i": 9.0})
	if _, ok := c.lookup(key9); !ok {
		t.Fatal("most recent entry evicted")
	}
	key0, _ := c.key("svc://x", core.Values{"i": 0.0})
	if _, ok := c.lookup(key0); ok {
		t.Fatal("oldest entry still cached")
	}
}

// TestWorkflowMemoFlagWiresAdapterCache asserts the published composite
// service shares one block cache across requests when the document sets
// memo, and does not memoize when it does not.
func TestWorkflowMemoFlagWiresAdapterCache(t *testing.T) {
	for _, memo := range []bool{true, false} {
		inv, calls := countingInvoker()
		factory := NewAdapterFactory(inv, inv)
		wf := memoDiamond()
		wf.Memo = memo
		doc, err := wf.Encode()
		if err != nil {
			t.Fatal(err)
		}
		a, err := factory(json.RawMessage(fmt.Sprintf(`{"workflow": %s}`, doc)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			res, err := a.Invoke(context.Background(), &adapter.Request{
				Inputs: core.Values{"a": 1.0, "b": 2.0},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Outputs["result"] != 6.0 {
				t.Fatalf("memo=%v run %d: outputs %v", memo, i, res.Outputs)
			}
		}
		want := 6
		if memo {
			want = 3
		}
		if len(*calls) != want {
			t.Fatalf("memo=%v: %d service calls across two requests, want %d (%v)",
				memo, len(*calls), want, *calls)
		}
	}
}
