package workflow

import (
	"context"
	"fmt"
	"sync"

	"mathcloud/internal/core"
	"mathcloud/internal/script"
)

// Invoker calls computational web services on behalf of the workflow
// runtime.  The standard implementation goes through the unified REST API
// (see HTTPInvoker); tests may substitute an in-process fake.
type Invoker interface {
	Call(ctx context.Context, serviceURI string, inputs core.Values) (core.Values, error)
}

// Engine executes validated workflows.  Independent blocks run
// concurrently: the engine is dataflow-driven, which is what makes the
// paper's coarse-grained application decompositions (e.g. block matrix
// inversion) run in parallel across services.
type Engine struct {
	// Invoker performs service calls; required if the workflow contains
	// service blocks.
	Invoker Invoker
	// Describer resolves service descriptions during validation;
	// required if the workflow contains service blocks.
	Describer Describer
	// OnBlockState, when non-nil, receives per-block state transitions
	// (the editor's colouring of running workflows).
	OnBlockState func(block string, state core.JobState)
	// ScriptStepLimit bounds script block execution (0 = default).
	ScriptStepLimit int
	// BlockCache, when non-nil, memoizes service-block invocations: a
	// service block whose inputs hash to a cached result publishes that
	// result without calling the service.  Share one cache across runs to
	// reuse sub-computations between requests (see Workflow.Memo).
	BlockCache *BlockCache
}

// BlockError reports the failure of one workflow block.
type BlockError struct {
	Block string
	Err   error
}

// Error implements the error interface.
func (e *BlockError) Error() string {
	return fmt.Sprintf("workflow: block %q: %v", e.Block, e.Err)
}

// Unwrap returns the underlying error.
func (e *BlockError) Unwrap() error { return e.Err }

// Compiled is a validated workflow ready for repeated execution: ports are
// resolved, scripts parsed, the topological order fixed.  Compiling once
// and running many times is how the WMS avoids re-validating a published
// workflow on every request.
type Compiled struct {
	r *resolved
}

// Workflow returns the underlying workflow document.
func (c *Compiled) Workflow() *Workflow { return c.r.wf }

// Compile validates the workflow against the describer and returns the
// executable form.  A Compiled is immutable and safe for concurrent runs.
func Compile(wf *Workflow, desc Describer) (*Compiled, error) {
	r, err := wf.validate(desc)
	if err != nil {
		return nil, err
	}
	return &Compiled{r: r}, nil
}

// Run validates and executes the workflow with the given request inputs
// and returns the workflow outputs.  Callers executing the same workflow
// repeatedly should Compile once and use RunCompiled.
func (e *Engine) Run(ctx context.Context, wf *Workflow, inputs core.Values) (core.Values, error) {
	c, err := Compile(wf, e.Describer)
	if err != nil {
		return nil, err
	}
	return e.RunCompiled(ctx, c, inputs)
}

// RunCompiled executes a compiled workflow with the given request inputs.
func (e *Engine) RunCompiled(ctx context.Context, c *Compiled, inputs core.Values) (core.Values, error) {
	return e.runResolved(ctx, c.r, inputs)
}

func (e *Engine) setState(block string, s core.JobState) {
	if e.OnBlockState != nil {
		e.OnBlockState(block, s)
	}
}

func (e *Engine) runResolved(ctx context.Context, r *resolved, inputs core.Values) (core.Values, error) {
	// Check request inputs against the workflow's input blocks.
	desc := r.wf.CompositeDescription()
	inputs = desc.ApplyDefaults(inputs)
	for _, b := range r.wf.Blocks {
		if b.Type == BlockInput {
			if _, ok := inputs[b.Name]; !ok {
				if b.Optional {
					if b.Default != nil {
						inputs[b.Name] = b.Default
					}
					continue
				}
				return nil, core.ErrBadRequest("workflow: missing input %q", b.Name)
			}
			if b.Schema != nil {
				if err := b.Schema.Validate(inputs[b.Name]); err != nil {
					return nil, core.ErrBadRequest("workflow: input %q: %v", b.Name, err)
				}
			}
		}
	}
	for name := range inputs {
		if _, ok := desc.Input(name); !ok {
			return nil, core.ErrBadRequest("workflow: unknown input %q", name)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu     sync.Mutex
		values = make(map[PortRef]any)
		outs   = core.Values{}
	)
	// doneCh carries block completions back to the coordinator.
	type completion struct {
		block string
		err   error
	}
	doneCh := make(chan completion)

	// Dependency bookkeeping at block granularity.
	waiting := make(map[string]map[string]bool) // block -> unfinished predecessor blocks
	dependents := make(map[string][]string)
	for _, b := range r.wf.Blocks {
		waiting[b.ID] = make(map[string]bool)
		e.setState(b.ID, core.StateWaiting)
	}
	for _, edge := range r.wf.Edges {
		if !waiting[edge.To.Block][edge.From.Block] {
			waiting[edge.To.Block][edge.From.Block] = true
			dependents[edge.From.Block] = append(dependents[edge.From.Block], edge.To.Block)
		}
	}

	running := 0
	start := func(blockID string) {
		running++
		e.setState(blockID, core.StateRunning)
		go func() {
			err := e.runBlock(runCtx, r, blockID, inputs, &mu, values, outs)
			select {
			case doneCh <- completion{blockID, err}:
			case <-runCtx.Done():
				// Coordinator gave up; report anyway so it can drain.
				doneCh <- completion{blockID, runCtx.Err()}
			}
		}()
	}

	// started guards against launching a block twice; finished records
	// completed blocks.  They are distinct sets: a block is started the
	// moment its last predecessor completes and finished only when its own
	// completion is read from doneCh.
	started := make(map[string]bool)
	finished := make(map[string]bool)

	// Launch all initially ready blocks in deterministic order.
	for _, id := range r.order {
		if len(waiting[id]) == 0 {
			start(id)
			started[id] = true
		}
	}

	var firstErr error
	for running > 0 {
		c := <-doneCh
		running--
		finished[c.block] = true
		if c.err != nil {
			e.setState(c.block, core.StateError)
			if firstErr == nil {
				firstErr = &BlockError{Block: c.block, Err: c.err}
				cancel()
			}
			continue
		}
		e.setState(c.block, core.StateDone)
		if firstErr != nil {
			continue
		}
		for _, dep := range dependents[c.block] {
			delete(waiting[dep], c.block)
			if len(waiting[dep]) == 0 && !started[dep] {
				start(dep)
				started[dep] = true
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// runBlock executes one block, reading its input port values and
// publishing its output port values.
func (e *Engine) runBlock(ctx context.Context, r *resolved, blockID string,
	inputs core.Values, mu *sync.Mutex, values map[PortRef]any, outs core.Values) error {

	b, _ := r.wf.Block(blockID)

	// Gather the values on this block's input ports.
	blockIn := core.Values{}
	mu.Lock()
	for name, p := range r.inPorts[blockID] {
		if edge, ok := r.incoming[p.ref]; ok {
			val, ok := lookup(values, edge.From)
			if !ok {
				mu.Unlock()
				return fmt.Errorf("internal: value for %s not produced", edge.From)
			}
			blockIn[name] = val
			continue
		}
		if b.Type == BlockService {
			if v, ok := b.Params[name]; ok {
				blockIn[name] = v
			}
		}
	}
	mu.Unlock()

	publish := func(port string, val any) {
		mu.Lock()
		values[PortRef{Block: blockID, Port: port}] = val
		mu.Unlock()
	}

	switch b.Type {
	case BlockInput:
		val, ok := inputs[b.Name]
		if !ok {
			// Optional input without a default: publish null.
			val = nil
		}
		publish("value", val)
		return nil
	case BlockConst:
		if b.Schema != nil {
			if err := b.Schema.Validate(b.Value); err != nil {
				return err
			}
		}
		publish("value", b.Value)
		return nil
	case BlockOutput:
		val := blockIn["value"]
		if b.Schema != nil {
			if _, isFile := core.FileRefID(val); !isFile {
				if err := b.Schema.Validate(val); err != nil {
					return err
				}
			}
		}
		mu.Lock()
		outs[b.Name] = val
		mu.Unlock()
		return nil
	case BlockService:
		if e.Invoker == nil {
			return fmt.Errorf("no invoker configured for service calls")
		}
		var memoKey string
		if e.BlockCache != nil {
			if key, ok := e.BlockCache.key(b.Service, blockIn); ok {
				memoKey = key
				if cached, hit := e.BlockCache.lookup(key); hit {
					metBlockMemoHits.Inc()
					for name := range r.outPorts[blockID] {
						if v, ok := cached[name]; ok {
							publish(name, v)
						}
					}
					return nil
				}
				metBlockMemoMisses.Inc()
			}
		}
		result, err := e.Invoker.Call(ctx, b.Service, blockIn)
		if err != nil {
			return err
		}
		if memoKey != "" {
			e.BlockCache.store(memoKey, result)
		}
		for name := range r.outPorts[blockID] {
			if v, ok := result[name]; ok {
				publish(name, v)
			}
		}
		return nil
	case BlockScript:
		prog := r.programs[blockID]
		limit := e.ScriptStepLimit
		if limit <= 0 {
			limit = script.DefaultStepLimit
		}
		out, _, err := prog.RunLimited(map[string]any(blockIn), limit)
		if err != nil {
			return err
		}
		for _, p := range b.Outputs {
			v, ok := out[p.Name]
			if !ok {
				return fmt.Errorf("script did not set out.%s", p.Name)
			}
			if p.Schema != nil {
				if err := p.Schema.Validate(v); err != nil {
					return err
				}
			}
			publish(p.Name, v)
		}
		return nil
	default:
		return fmt.Errorf("unknown block type %q", b.Type)
	}
}

func lookup(values map[PortRef]any, ref PortRef) (any, bool) {
	v, ok := values[ref]
	return v, ok
}
