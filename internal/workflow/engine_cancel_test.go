package workflow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/core"
)

// blockingInvoker blocks calls until its context is cancelled.
type blockingInvoker struct {
	started atomic.Int32
	desc    *fakeInvoker
}

func (b *blockingInvoker) Describe(uri string) (core.ServiceDescription, error) {
	return b.desc.Describe(uri)
}

func (b *blockingInvoker) Call(ctx context.Context, uri string, in core.Values) (core.Values, error) {
	b.started.Add(1)
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestEngineCancellation cancels a run while service blocks are in flight;
// the engine must return promptly with a context error.
func TestEngineCancellation(t *testing.T) {
	fake := newFakeInvoker()
	inv := &blockingInvoker{desc: fake}
	eng := &Engine{Invoker: inv, Describer: inv}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, diamond(), core.Values{"x": 1.0})
		done <- err
	}()
	// Wait until both parallel branches are in flight, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for inv.started.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("branches never started (%d)", inv.started.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not return after cancellation")
	}
}

// TestEngineFailureCancelsSiblings verifies that when one branch fails the
// other in-flight branch is cancelled rather than left running.
func TestEngineFailureCancelsSiblings(t *testing.T) {
	fake := newFakeInvoker()
	released := make(chan struct{})
	fake.add("svc://hang", core.ServiceDescription{
		Name:    "hang",
		Inputs:  []core.Param{{Name: "x", Optional: true}},
		Outputs: []core.Param{{Name: "y", Optional: true}},
	}, nil)
	// Route through a custom invoker: fail on svc://fail, block on
	// svc://hang until ctx cancel, then record release.
	inv := invokerFunc{
		describe: fake.Describe,
		call: func(ctx context.Context, uri string, in core.Values) (core.Values, error) {
			switch uri {
			case "svc://hang":
				<-ctx.Done()
				close(released)
				return nil, ctx.Err()
			default:
				return fake.Call(ctx, uri, in)
			}
		},
	}
	wf := &Workflow{
		Name: "sibling",
		Blocks: []Block{
			{ID: "h", Type: BlockService, Service: "svc://hang"},
			{ID: "f", Type: BlockService, Service: "svc://fail"},
			{ID: "o", Type: BlockOutput, Name: "y"},
		},
		Edges: []Edge{{From: PortRef{"h", "y"}, To: PortRef{"o", "value"}}},
	}
	eng := &Engine{Invoker: inv, Describer: inv}
	_, err := eng.Run(context.Background(), wf, core.Values{})
	if err == nil {
		t.Fatal("run succeeded despite failing block")
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Error("hanging sibling was not cancelled after the failure")
	}
}

type invokerFunc struct {
	describe func(string) (core.ServiceDescription, error)
	call     func(context.Context, string, core.Values) (core.Values, error)
}

func (f invokerFunc) Describe(uri string) (core.ServiceDescription, error) {
	return f.describe(uri)
}

func (f invokerFunc) Call(ctx context.Context, uri string, in core.Values) (core.Values, error) {
	return f.call(ctx, uri, in)
}
