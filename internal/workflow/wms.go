package workflow

import (
	"errors"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"sort"
	"sync"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/rest"
)

// WMS is the workflow management service: it performs storage, deployment
// and execution of workflows created with the editor.  Each saved workflow
// is deployed as a new composite service in the WMS's container, and
// subsequent execution happens by sending requests to that service through
// the unified REST API — the WMS itself is a RESTful web service.
type WMS struct {
	container *container.Container

	mu        sync.RWMutex
	workflows map[string]*Workflow
}

// NewWMS creates a workflow management service on top of the given
// container, registering the "workflow" adapter kind bound to the given
// invoker/describer pair in the container's adapter registry.
func NewWMS(c *container.Container, registry *adapter.Registry, inv Invoker, desc Describer) *WMS {
	registry.Register("workflow", NewAdapterFactory(inv, desc))
	return &WMS{container: c, workflows: make(map[string]*Workflow)}
}

// Save validates and stores a workflow and (re)deploys it as a composite
// service.  The composite service name is the workflow name.
func (w *WMS) Save(wf *Workflow) error {
	cfg, err := compositeConfig(wf)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, exists := w.workflows[wf.Name]; exists {
		if err := w.container.Undeploy(wf.Name); err != nil {
			return err
		}
	}
	if err := w.container.Deploy(cfg); err != nil {
		return err
	}
	w.workflows[wf.Name] = wf
	return nil
}

func compositeConfig(wf *Workflow) (container.ServiceConfig, error) {
	raw, err := wf.Encode()
	if err != nil {
		return container.ServiceConfig{}, err
	}
	return container.ServiceConfig{
		Description: wf.CompositeDescription(),
		Adapter: container.AdapterSpec{
			Kind:   "workflow",
			Config: []byte(fmt.Sprintf(`{"workflow": %s}`, raw)),
		},
	}, nil
}

// Get returns a stored workflow document.
func (w *WMS) Get(name string) (*Workflow, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	wf, ok := w.workflows[name]
	if !ok {
		return nil, core.ErrNotFound("workflow", name)
	}
	return wf, nil
}

// List returns the stored workflow names, sorted.
func (w *WMS) List() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	names := make([]string, 0, len(w.workflows))
	for n := range w.workflows {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delete removes a workflow and undeploys its composite service.
func (w *WMS) Delete(name string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.workflows[name]; !ok {
		return core.ErrNotFound("workflow", name)
	}
	delete(w.workflows, name)
	return w.container.Undeploy(name)
}

// ServiceURI returns the URI of the composite service publishing the
// workflow.
func (w *WMS) ServiceURI(name string) string {
	return w.container.ServiceURI(name)
}

// Container returns the underlying container.
func (w *WMS) Container() *container.Container { return w.container }

// Handler exposes the WMS REST API and editor page on top of the
// container's unified API:
//
//	GET    /workflows            list stored workflows
//	POST   /workflows            save (create or update) a workflow
//	GET    /workflows/{name}     download the workflow JSON document
//	DELETE /workflows/{name}     delete the workflow
//	(everything else)            the container's unified REST API
func (w *WMS) Handler() http.Handler {
	// Instrument the combined handler once at the outermost layer, so the
	// WMS-specific routes get request IDs and metrics too and pass-through
	// container requests are not counted twice.
	containerHandler := w.container.APIHandler()
	return container.Instrument(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		head, tail := rest.ShiftPath(r.URL.Path)
		switch head {
		case "workflows":
			w.handleWorkflows(rw, r, tail)
		case "editor":
			w.renderEditor(rw)
		default:
			containerHandler.ServeHTTP(rw, r)
		}
	}))
}

func (w *WMS) handleWorkflows(rw http.ResponseWriter, r *http.Request, path string) {
	name, _ := rest.ShiftPath(path)
	switch {
	case name == "" && r.Method == http.MethodGet:
		names := w.List()
		type entry struct {
			Name    string `json:"name"`
			Service string `json:"service"`
		}
		out := make([]entry, 0, len(names))
		for _, n := range names {
			out = append(out, entry{Name: n, Service: w.ServiceURI(n)})
		}
		rest.WriteJSON(rw, http.StatusOK, map[string]any{"workflows": out})
	case name == "" && r.Method == http.MethodPost:
		var wf Workflow
		if err := rest.ReadJSON(r, &wf); err != nil {
			rest.WriteError(rw, err)
			return
		}
		if err := w.Save(&wf); err != nil {
			var ve *ValidationError
			if errors.As(err, &ve) {
				rest.WriteError(rw, core.ErrBadRequest("%v", err))
				return
			}
			rest.WriteError(rw, err)
			return
		}
		rw.Header().Set("Location", w.ServiceURI(wf.Name))
		rest.WriteJSON(rw, http.StatusCreated, map[string]string{
			"name":    wf.Name,
			"service": w.ServiceURI(wf.Name),
		})
	case name == "":
		rest.MethodNotAllowed(rw, http.MethodGet, http.MethodPost)
	case r.Method == http.MethodGet:
		wf, err := w.Get(name)
		if err != nil {
			rest.WriteError(rw, err)
			return
		}
		rest.WriteJSON(rw, http.StatusOK, wf)
	case r.Method == http.MethodDelete:
		if err := w.Delete(name); err != nil {
			rest.WriteError(rw, err)
			return
		}
		rw.WriteHeader(http.StatusNoContent)
	default:
		rest.MethodNotAllowed(rw, http.MethodGet, http.MethodDelete)
	}
}

// The editor page.  The paper's graphical editor is a JavaScript Web
// application inspired by Yahoo! Pipes; here the JSON workflow format —
// which the paper also exposes for manual editing and re-upload — is the
// primary editing surface, served with a minimal form.
var editorTemplate = template.Must(template.New("editor").Parse(`<!DOCTYPE html>
<html><head><title>MathCloud workflow editor</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
textarea{width:100%;height:24em;font-family:monospace}
pre{background:#f4f4f4;padding:1em;overflow:auto}
</style></head><body>
<h1>Workflow editor</h1>
<p>Stored workflows: {{range .}}<a href="/workflows/{{.}}">{{.}}</a> {{end}}</p>
<p>Edit the workflow document (JSON) and save; the workflow is validated,
published as a composite service and becomes callable like any other
service.</p>
<textarea id="doc">{
  "name": "example",
  "blocks": [],
  "edges": []
}</textarea><br>
<button onclick="save()">Save &amp; publish</button>
<pre id="result"></pre>
<script>
async function save() {
  const out = document.getElementById('result');
  try {
    const resp = await fetch('/workflows', {
      method: 'POST',
      headers: {'Content-Type': 'application/json'},
      body: document.getElementById('doc').value
    });
    out.textContent = JSON.stringify(await resp.json(), null, 2);
  } catch (e) { out.textContent = 'error: ' + e; }
}
</script>
</body></html>
`))

func (w *WMS) renderEditor(rw http.ResponseWriter) {
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := editorTemplate.Execute(rw, w.List()); err != nil {
		log.Printf("workflow: render editor: %v", err)
	}
}
