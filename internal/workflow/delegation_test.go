package workflow_test

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/security"
	"mathcloud/internal/workflow"
)

// TestDelegationThroughWMS reproduces the paper's central delegation use
// case end to end: a user invokes a composite (workflow) service; the
// workflow service then accesses the services involved in the workflow on
// behalf of that user, authorized by the downstream service's proxy list.
func TestDelegationThroughWMS(t *testing.T) {
	provider, err := security.NewWebIdentityProvider(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	const (
		wmsIdentity  = "openid:wms@mathcloud"
		userIdentity = "openid:alice@id.example"
	)
	guard := security.NewGuard(security.TokenAuthenticator{Provider: provider})
	// The solver admits alice (and trusts the WMS to proxy for users);
	// the composite service admits alice directly.
	// The WMS itself needs read access to validate the workflow against
	// the service description, so it appears on the allow list too; the
	// proxy list is what authorizes it to act for users.
	guard.SetPolicy("double", security.Policy{
		Allow:   []string{userIdentity, wmsIdentity},
		Proxies: []string{wmsIdentity},
	})
	guard.SetPolicy("chain", security.Policy{Allow: []string{userIdentity}})

	adapter.RegisterFunc("delegation.double", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	registry := adapter.NewRegistry()
	c, err := container.New(container.Options{
		Workers: 4, Guard: guard, Adapters: registry, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// The WMS runs under its own identity; its invoker carries the WMS
	// token and will add Act-For per job owner.
	wmsToken, err := provider.Login(strings.TrimPrefix(wmsIdentity, "openid:"))
	if err != nil {
		t.Fatal(err)
	}
	invoker := &workflow.HTTPInvoker{Client: &client.Client{Token: wmsToken}}
	wms := workflow.NewWMS(c, registry, invoker, invoker)

	srv := httptest.NewServer(wms.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)

	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "double",
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function": "delegation.double"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	wf := &workflow.Workflow{
		Name: "chain",
		Blocks: []workflow.Block{
			{ID: "x", Type: workflow.BlockInput, Name: "x"},
			{ID: "d", Type: workflow.BlockService, Service: c.ServiceURI("double")},
			{ID: "out", Type: workflow.BlockOutput, Name: "y"},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "x", Port: "value"}, To: workflow.PortRef{Block: "d", Port: "x"}},
			{From: workflow.PortRef{Block: "d", Port: "y"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	if err := wms.Save(wf); err != nil {
		t.Fatal(err)
	}

	// Alice calls the composite service with her own token; the workflow
	// engine calls "double" as the WMS acting for alice.
	aliceToken, err := provider.Login(strings.TrimPrefix(userIdentity, "openid:"))
	if err != nil {
		t.Fatal(err)
	}
	alice := &client.Client{Token: aliceToken}
	out, err := alice.Service(wms.ServiceURI("chain")).Call(
		context.Background(), core.Values{"x": 21.0})
	if err != nil {
		t.Fatalf("delegated workflow failed: %v", err)
	}
	if out["y"] != 42.0 {
		t.Errorf("y = %v, want 42", out["y"])
	}

	// The downstream job must record alice — not the WMS — as its owner.
	jobs := c.Jobs().List("double")
	if len(jobs) == 0 {
		t.Fatal("no downstream job recorded")
	}
	if jobs[0].Owner != userIdentity {
		t.Errorf("downstream owner = %q, want %q", jobs[0].Owner, userIdentity)
	}

	// A user not on the solver's allow list must be refused even through
	// the trusted WMS: delegation does not elevate privileges.
	eveToken, err := provider.Login("eve@id.example")
	if err != nil {
		t.Fatal(err)
	}
	guard.SetPolicy("chain", security.Policy{
		Allow: []string{userIdentity, "openid:eve@id.example"},
	})
	eve := &client.Client{Token: eveToken}
	_, err = eve.Service(wms.ServiceURI("chain")).Call(
		context.Background(), core.Values{"x": 1.0})
	if err == nil {
		t.Fatal("eve's delegated run succeeded; proxying must not bypass the allow list")
	}
	if !strings.Contains(err.Error(), "not allowed") && !strings.Contains(err.Error(), "403") {
		t.Errorf("err = %v, want an authorization failure", err)
	}
}

// TestDelegationWithoutProxyTrustFails removes the WMS from the proxy list
// and expects the composite run to fail at the downstream hop.
func TestDelegationWithoutProxyTrustFails(t *testing.T) {
	provider, err := security.NewWebIdentityProvider(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	guard := security.NewGuard(security.TokenAuthenticator{Provider: provider})
	guard.SetPolicy("double", security.Policy{
		Allow: []string{"openid:alice", "openid:wms@mathcloud"},
		// No proxies: nobody may act on behalf of users.
	})
	guard.SetPolicy("chain", security.Policy{Allow: []string{"openid:alice"}})

	adapter.RegisterFunc("delegation.double2", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"y": 1.0}, nil
	})
	registry := adapter.NewRegistry()
	c, err := container.New(container.Options{
		Workers: 4, Guard: guard, Adapters: registry, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	wmsToken, _ := provider.Login("wms@mathcloud")
	invoker := &workflow.HTTPInvoker{Client: &client.Client{Token: wmsToken}}
	wms := workflow.NewWMS(c, registry, invoker, invoker)
	srv := httptest.NewServer(wms.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)

	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "double",
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function": "delegation.double2"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := wms.Save(&workflow.Workflow{
		Name: "chain",
		Blocks: []workflow.Block{
			{ID: "x", Type: workflow.BlockInput, Name: "x"},
			{ID: "d", Type: workflow.BlockService, Service: c.ServiceURI("double")},
			{ID: "out", Type: workflow.BlockOutput, Name: "y"},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "x", Port: "value"}, To: workflow.PortRef{Block: "d", Port: "x"}},
			{From: workflow.PortRef{Block: "d", Port: "y"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	aliceToken, _ := provider.Login("alice")
	alice := &client.Client{Token: aliceToken}
	_, err = alice.Service(wms.ServiceURI("chain")).Call(
		context.Background(), core.Values{"x": 1.0})
	if err == nil {
		t.Fatal("delegated run succeeded without proxy trust")
	}
	if !strings.Contains(err.Error(), "not trusted") {
		t.Errorf("err = %v, want proxy-trust failure", err)
	}
}

func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }
