package workflow

import (
	"context"
	"fmt"
	"time"

	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
)

// HTTPInvoker calls services through the unified REST API using the
// platform client.  It implements both Invoker and Describer, so a single
// value configures an Engine for real distributed execution.  Calls inherit
// the client's retry policy (rest.DefaultRetry unless overridden), so a
// workflow block survives dropped connections and transient 503 overload
// answers from a busy container instead of failing the whole workflow.
// Blocks that outlive the submit's long-poll window are followed over the
// job's SSE event stream (client.Service.WaitSSE): a running DAG holds one
// idle connection per in-flight remote block and is notified of completion
// by push, instead of re-polling every block — with transparent fallback
// to the long-poll loop against servers that expose no event streams.
// Description fetches go through the client's conditional-GET description
// cache: repeated workflow validations revalidate with If-None-Match and
// reuse the cached decoded description on a 304 instead of re-transferring
// and re-decoding it per run.
type HTTPInvoker struct {
	// Client is the underlying platform client; nil uses a default one.
	Client *client.Client
	// DescribeTimeout bounds description fetches during validation
	// (default 10 s).
	DescribeTimeout time.Duration
}

func (i *HTTPInvoker) platformClient() *client.Client {
	if i.Client != nil {
		return i.Client
	}
	return client.Default()
}

// Call implements Invoker.
func (i *HTTPInvoker) Call(ctx context.Context, serviceURI string, inputs core.Values) (core.Values, error) {
	return i.platformClient().Service(serviceURI).Call(ctx, inputs)
}

// ActingFor returns a copy of the invoker whose calls carry the delegated
// user identity — the paper's proxying mechanism: the workflow service,
// authenticated with its own credentials, invokes the services involved in
// a workflow on behalf of the user who invoked it.  The copy shares the
// invoker's own credentials (client certificate or bearer token) but adds
// the Act-For header.
func (i *HTTPInvoker) ActingFor(user string) Invoker {
	base := i.platformClient()
	delegated := &client.Client{
		HTTP:       base.HTTP,
		Token:      base.Token,
		ActFor:     user,
		WaitWindow: base.WaitWindow,
		MinPoll:    base.MinPoll,
		Retry:      base.Retry,
	}
	return &HTTPInvoker{Client: delegated, DescribeTimeout: i.DescribeTimeout}
}

// Describe implements Describer.
func (i *HTTPInvoker) Describe(serviceURI string) (core.ServiceDescription, error) {
	timeout := i.DescribeTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return i.platformClient().Service(serviceURI).Describe(ctx)
}

// LocalInvoker is the in-process invocation fast path.  When a service URI
// is served by a container running in the same process (per the container
// registry populated by SetBaseURL), the call is dispatched straight into
// that container's job manager — no HTTP round trip, no JSON re-marshal,
// and completion is observed on the job's done channel rather than a poll
// window.  Every other URI falls back to the HTTP invoker, so a workflow
// can freely mix local and remote blocks.
//
// Guarded containers are never short-cut: their authentication and
// authorization checks live in the HTTP layer, so those calls take the
// fallback path with the invoker's credentials.
type LocalInvoker struct {
	// Fallback handles URIs not served in-process; nil uses a default
	// HTTPInvoker over the shared tuned transport.
	Fallback Invoker
	// actFor is the delegated identity recorded as the owner of locally
	// dispatched jobs (see ActingFor).
	actFor string
}

// NewLocalInvoker returns a LocalInvoker with the given fallback (nil for
// the default HTTP invoker).
func NewLocalInvoker(fallback Invoker) *LocalInvoker {
	return &LocalInvoker{Fallback: fallback}
}

func (i *LocalInvoker) fallback() Invoker {
	if i.Fallback != nil {
		return i.Fallback
	}
	return &HTTPInvoker{}
}

// Call implements Invoker.
func (i *LocalInvoker) Call(ctx context.Context, serviceURI string, inputs core.Values) (core.Values, error) {
	c, name, ok := container.LookupLocal(serviceURI)
	if !ok || c.HasGuard() {
		return i.fallback().Call(ctx, serviceURI, inputs)
	}
	jobs := c.Jobs()
	// SubmitCtx carries the caller's request ID into the dispatched job, so
	// the in-process fast path preserves the trace exactly like an HTTP hop
	// would via the X-Request-ID header.
	job, err := jobs.SubmitCtx(ctx, name, inputs, i.actFor)
	if err != nil {
		return nil, err
	}
	done, err := jobs.Wait(ctx, job.ID, 0)
	if err != nil {
		// The caller gave up; cancel the dispatched job so it does not
		// keep burning a worker slot.
		_, _ = jobs.Delete(job.ID)
		return nil, err
	}
	switch done.State {
	case core.StateDone:
		return done.Outputs, nil
	case core.StateCancelled:
		return nil, fmt.Errorf("workflow: job %s on %s was cancelled", done.ID, serviceURI)
	default:
		return nil, fmt.Errorf("workflow: job %s on %s failed: %s", done.ID, serviceURI, done.Error)
	}
}

// ActingFor implements ActForInvoker: locally dispatched jobs record the
// delegated user as their owner, and fallback calls are delegated through
// the fallback's own ActingFor (the Act-For header for HTTP).
func (i *LocalInvoker) ActingFor(user string) Invoker {
	fb := i.Fallback
	if af, ok := i.fallback().(ActForInvoker); ok {
		fb = af.ActingFor(user)
	}
	return &LocalInvoker{Fallback: fb, actFor: user}
}

// Describe implements Describer, resolving local services without HTTP —
// the in-process analogue of the client's description cache: a local hit
// reads the deployed description straight from the container, and misses
// fall back to the HTTP describer whose client revalidates its cached copy
// via conditional GET.
func (i *LocalInvoker) Describe(serviceURI string) (core.ServiceDescription, error) {
	if c, name, ok := container.LookupLocal(serviceURI); ok && !c.HasGuard() {
		return c.Describe(name)
	}
	if d, ok := i.fallback().(Describer); ok {
		return d.Describe(serviceURI)
	}
	return (&HTTPInvoker{}).Describe(serviceURI)
}
