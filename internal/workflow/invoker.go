package workflow

import (
	"context"
	"time"

	"mathcloud/internal/client"
	"mathcloud/internal/core"
)

// HTTPInvoker calls services through the unified REST API using the
// platform client.  It implements both Invoker and Describer, so a single
// value configures an Engine for real distributed execution.
type HTTPInvoker struct {
	// Client is the underlying platform client; nil uses a default one.
	Client *client.Client
	// DescribeTimeout bounds description fetches during validation
	// (default 10 s).
	DescribeTimeout time.Duration
}

func (i *HTTPInvoker) platformClient() *client.Client {
	if i.Client != nil {
		return i.Client
	}
	return client.New()
}

// Call implements Invoker.
func (i *HTTPInvoker) Call(ctx context.Context, serviceURI string, inputs core.Values) (core.Values, error) {
	return i.platformClient().Service(serviceURI).Call(ctx, inputs)
}

// ActingFor returns a copy of the invoker whose calls carry the delegated
// user identity — the paper's proxying mechanism: the workflow service,
// authenticated with its own credentials, invokes the services involved in
// a workflow on behalf of the user who invoked it.  The copy shares the
// invoker's own credentials (client certificate or bearer token) but adds
// the Act-For header.
func (i *HTTPInvoker) ActingFor(user string) Invoker {
	base := i.platformClient()
	delegated := &client.Client{HTTP: base.HTTP, Token: base.Token, ActFor: user}
	return &HTTPInvoker{Client: delegated, DescribeTimeout: i.DescribeTimeout}
}

// Describe implements Describer.
func (i *HTTPInvoker) Describe(serviceURI string) (core.ServiceDescription, error) {
	timeout := i.DescribeTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return i.platformClient().Service(serviceURI).Describe(ctx)
}
