package workflow

import (
	"container/list"
	"sync"

	"mathcloud/internal/core"
	"mathcloud/internal/obs"
)

// Block-memoization metric families.  Like the container metrics they live
// in the process-wide default registry and aggregate across composite
// services.
var (
	metBlockMemoHits = obs.NewCounter("mc_wf_block_memo_hits_total",
		"Workflow service-block invocations served from the block cache.")
	metBlockMemoMisses = obs.NewCounter("mc_wf_block_memo_misses_total",
		"Workflow service-block invocations that executed the service.")
	metBlockMemoEvictions = obs.NewCounter("mc_wf_block_memo_evictions_total",
		"Block cache entries evicted by the LRU bound.")
)

// defaultBlockCacheEntries bounds the per-workflow block cache.
const defaultBlockCacheEntries = 1024

// BlockCache memoizes the results of service-block invocations across runs
// of one workflow.  It is the engine-level counterpart of the container's
// computation cache: the container dedups identical jobs of one service,
// the block cache lets a composite service skip the REST round-trip (and
// the remote queue) entirely for sub-computations it has already seen.
//
// Keys are content hashes of (service URI, block inputs); file references
// are hashed by identity, not content, so a re-uploaded file is a miss —
// conservative but never wrong.  Results containing file references are not
// cached at all: the referenced job files may be purged between runs.
type BlockCache struct {
	maxEntries int

	mu      sync.Mutex
	entries map[string]*blockCacheEntry
	lru     *list.List // front = most recently used
}

type blockCacheEntry struct {
	key     string
	outputs core.Values
	elem    *list.Element
}

// NewBlockCache creates a block cache holding at most maxEntries results
// (0 = default).
func NewBlockCache(maxEntries int) *BlockCache {
	if maxEntries <= 0 {
		maxEntries = defaultBlockCacheEntries
	}
	return &BlockCache{
		maxEntries: maxEntries,
		entries:    make(map[string]*blockCacheEntry),
		lru:        list.New(),
	}
}

// key derives the cache key of one service-block invocation, or ok=false
// when the inputs cannot be hashed.
func (c *BlockCache) key(serviceURI string, inputs core.Values) (string, bool) {
	k, err := core.CanonicalHash(serviceURI, "block", inputs, nil)
	if err != nil {
		return "", false
	}
	return k, true
}

// lookup returns the cached outputs for key, refreshing its LRU position.
// The returned Values are shared and must be treated as immutable.
func (c *BlockCache) lookup(key string) (core.Values, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.outputs, true
}

// store caches the outputs of one service-block invocation.  Outputs
// containing file references are skipped: the files belong to a job whose
// lifetime the cache does not control.
func (c *BlockCache) store(key string, outputs core.Values) {
	for _, v := range outputs {
		if _, isFile := core.FileRefID(v); isFile {
			return
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return
	}
	e := &blockCacheEntry{key: key, outputs: outputs}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.maxEntries {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		old := oldest.Value.(*blockCacheEntry)
		c.lru.Remove(old.elem)
		delete(c.entries, old.key)
		metBlockMemoEvictions.Inc()
	}
}

// Len reports the number of cached block results.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
