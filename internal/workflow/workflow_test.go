package workflow

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
)

// fakeInvoker serves canned service descriptions and dispatches calls to
// functions, without HTTP.
type fakeInvoker struct {
	mu       sync.Mutex
	descs    map[string]core.ServiceDescription
	handlers map[string]func(core.Values) (core.Values, error)
	calls    []string
	barrier  chan struct{} // when non-nil, Call blocks until two arrive
	inFlight int
	maxPar   int
}

func newFakeInvoker() *fakeInvoker {
	f := &fakeInvoker{
		descs:    make(map[string]core.ServiceDescription),
		handlers: make(map[string]func(core.Values) (core.Values, error)),
	}
	num := jsonschema.New(jsonschema.TypeNumber)
	f.add("svc://add", core.ServiceDescription{
		Name:    "add",
		Inputs:  []core.Param{{Name: "a", Schema: num}, {Name: "b", Schema: num}},
		Outputs: []core.Param{{Name: "sum", Schema: num}},
	}, func(in core.Values) (core.Values, error) {
		return core.Values{"sum": in["a"].(float64) + in["b"].(float64)}, nil
	})
	f.add("svc://double", core.ServiceDescription{
		Name:    "double",
		Inputs:  []core.Param{{Name: "x", Schema: num}},
		Outputs: []core.Param{{Name: "y", Schema: num}},
	}, func(in core.Values) (core.Values, error) {
		return core.Values{"y": 2 * in["x"].(float64)}, nil
	})
	f.add("svc://fail", core.ServiceDescription{
		Name:    "fail",
		Inputs:  []core.Param{{Name: "x", Optional: true}},
		Outputs: []core.Param{{Name: "y", Optional: true}},
	}, func(in core.Values) (core.Values, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	return f
}

func (f *fakeInvoker) add(uri string, d core.ServiceDescription, h func(core.Values) (core.Values, error)) {
	f.descs[uri] = d
	f.handlers[uri] = h
}

func (f *fakeInvoker) Describe(uri string) (core.ServiceDescription, error) {
	d, ok := f.descs[uri]
	if !ok {
		return d, fmt.Errorf("no such service %q", uri)
	}
	return d, nil
}

func (f *fakeInvoker) Call(ctx context.Context, uri string, in core.Values) (core.Values, error) {
	f.mu.Lock()
	f.calls = append(f.calls, uri)
	f.inFlight++
	if f.inFlight > f.maxPar {
		f.maxPar = f.inFlight
	}
	barrier := f.barrier
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.inFlight--
		f.mu.Unlock()
	}()
	if barrier != nil && uri == "svc://double" {
		// Rendezvous with the concurrent partner call: one side sends,
		// the other receives.  Serial execution would deadlock, so a
		// timeout marks the failure.
		select {
		case barrier <- struct{}{}:
		case <-barrier:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("barrier timeout: no concurrent partner call")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	h, ok := f.handlers[uri]
	if !ok {
		return nil, fmt.Errorf("no such service %q", uri)
	}
	return h(in)
}

func numSchema() *jsonschema.Schema { return jsonschema.New(jsonschema.TypeNumber) }

// diamond builds the workflow  in -> double -> add <- double <- in
// computing 2x + 2x = 4x with two parallel "double" calls.
func diamond() *Workflow {
	return &Workflow{
		Name: "diamond",
		Blocks: []Block{
			{ID: "x", Type: BlockInput, Name: "x", Schema: numSchema()},
			{ID: "d1", Type: BlockService, Service: "svc://double"},
			{ID: "d2", Type: BlockService, Service: "svc://double"},
			{ID: "plus", Type: BlockService, Service: "svc://add"},
			{ID: "result", Type: BlockOutput, Name: "result", Schema: numSchema()},
		},
		Edges: []Edge{
			{From: PortRef{"x", "value"}, To: PortRef{"d1", "x"}},
			{From: PortRef{"x", "value"}, To: PortRef{"d2", "x"}},
			{From: PortRef{"d1", "y"}, To: PortRef{"plus", "a"}},
			{From: PortRef{"d2", "y"}, To: PortRef{"plus", "b"}},
			{From: PortRef{"plus", "sum"}, To: PortRef{"result", "value"}},
		},
	}
}

func TestDiamondWorkflowComputes(t *testing.T) {
	inv := newFakeInvoker()
	eng := &Engine{Invoker: inv, Describer: inv}
	out, err := eng.Run(context.Background(), diamond(), core.Values{"x": 5.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["result"] != 20.0 {
		t.Errorf("result = %v, want 20", out["result"])
	}
}

func TestParallelBranchesRunConcurrently(t *testing.T) {
	inv := newFakeInvoker()
	// The two double calls must rendezvous with each other, proving that
	// the independent branches of the diamond execute concurrently.
	inv.barrier = make(chan struct{})
	eng := &Engine{Invoker: inv, Describer: inv}
	out, err := eng.Run(context.Background(), diamond(), core.Values{"x": 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["result"] != 4.0 {
		t.Errorf("result = %v, want 4", out["result"])
	}
	if inv.maxPar < 2 {
		t.Errorf("max parallel calls = %d, want >= 2", inv.maxPar)
	}
}

func TestBlockStatesReported(t *testing.T) {
	inv := newFakeInvoker()
	var mu sync.Mutex
	states := make(map[string][]core.JobState)
	eng := &Engine{Invoker: inv, Describer: inv,
		OnBlockState: func(b string, s core.JobState) {
			mu.Lock()
			states[b] = append(states[b], s)
			mu.Unlock()
		}}
	if _, err := eng.Run(context.Background(), diamond(), core.Values{"x": 1.0}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, b := range []string{"x", "d1", "d2", "plus", "result"} {
		seq := states[b]
		if len(seq) < 3 || seq[0] != core.StateWaiting || seq[len(seq)-1] != core.StateDone {
			t.Errorf("block %s states = %v, want WAITING..DONE", b, seq)
		}
	}
}

func TestBlockFailurePropagates(t *testing.T) {
	inv := newFakeInvoker()
	wf := &Workflow{
		Name: "failing",
		Blocks: []Block{
			{ID: "f", Type: BlockService, Service: "svc://fail"},
			{ID: "out", Type: BlockOutput, Name: "y"},
		},
		Edges: []Edge{{From: PortRef{"f", "y"}, To: PortRef{"out", "value"}}},
	}
	eng := &Engine{Invoker: inv, Describer: inv}
	_, err := eng.Run(context.Background(), wf, core.Values{})
	if err == nil {
		t.Fatal("run succeeded, want block failure")
	}
	var be *BlockError
	if !asBlockErr(err, &be) || be.Block != "f" {
		t.Errorf("err = %v, want BlockError on f", err)
	}
}

func asBlockErr(err error, target **BlockError) bool {
	for err != nil {
		if e, ok := err.(*BlockError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestScriptAndConstBlocks(t *testing.T) {
	inv := newFakeInvoker()
	wf := &Workflow{
		Name: "scripted",
		Blocks: []Block{
			{ID: "n", Type: BlockInput, Name: "n", Schema: numSchema()},
			{ID: "k", Type: BlockConst, Value: 10.0, Schema: numSchema()},
			{ID: "combine", Type: BlockScript,
				Script:  "out.v = in.a * in.b + 1",
				Inputs:  []PortDecl{{Name: "a"}, {Name: "b"}},
				Outputs: []PortDecl{{Name: "v", Schema: numSchema()}}},
			{ID: "res", Type: BlockOutput, Name: "v"},
		},
		Edges: []Edge{
			{From: PortRef{"n", "value"}, To: PortRef{"combine", "a"}},
			{From: PortRef{"k", "value"}, To: PortRef{"combine", "b"}},
			{From: PortRef{"combine", "v"}, To: PortRef{"res", "value"}},
		},
	}
	eng := &Engine{Invoker: inv, Describer: inv}
	out, err := eng.Run(context.Background(), wf, core.Values{"n": 4.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["v"] != 41.0 {
		t.Errorf("v = %v, want 41", out["v"])
	}
}

func TestServiceParamBindings(t *testing.T) {
	inv := newFakeInvoker()
	wf := &Workflow{
		Name: "bound",
		Blocks: []Block{
			{ID: "n", Type: BlockInput, Name: "n", Schema: numSchema()},
			{ID: "plus", Type: BlockService, Service: "svc://add",
				Params: core.Values{"b": 100.0}},
			{ID: "res", Type: BlockOutput, Name: "sum"},
		},
		Edges: []Edge{
			{From: PortRef{"n", "value"}, To: PortRef{"plus", "a"}},
			{From: PortRef{"plus", "sum"}, To: PortRef{"res", "value"}},
		},
	}
	eng := &Engine{Invoker: inv, Describer: inv}
	out, err := eng.Run(context.Background(), wf, core.Values{"n": 1.0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["sum"] != 101.0 {
		t.Errorf("sum = %v, want 101", out["sum"])
	}
}

func TestValidationRejections(t *testing.T) {
	inv := newFakeInvoker()
	str := jsonschema.New(jsonschema.TypeString)
	cases := []struct {
		name string
		wf   *Workflow
		want string
	}{
		{"empty name", &Workflow{}, "empty workflow name"},
		{"duplicate block ids", &Workflow{Name: "w", Blocks: []Block{
			{ID: "a", Type: BlockConst}, {ID: "a", Type: BlockConst},
		}}, "duplicate block id"},
		{"unknown edge target", &Workflow{Name: "w",
			Blocks: []Block{{ID: "c", Type: BlockConst}},
			Edges:  []Edge{{From: PortRef{"c", "value"}, To: PortRef{"nope", "x"}}},
		}, "unknown block"},
		{"double-fed port", &Workflow{Name: "w",
			Blocks: []Block{
				{ID: "c1", Type: BlockConst}, {ID: "c2", Type: BlockConst},
				{ID: "o", Type: BlockOutput, Name: "v"},
			},
			Edges: []Edge{
				{From: PortRef{"c1", "value"}, To: PortRef{"o", "value"}},
				{From: PortRef{"c2", "value"}, To: PortRef{"o", "value"}},
			},
		}, "multiple incoming"},
		{"type mismatch", &Workflow{Name: "w",
			Blocks: []Block{
				{ID: "s", Type: BlockConst, Schema: str, Value: "hi"},
				{ID: "d", Type: BlockService, Service: "svc://double"},
				{ID: "o", Type: BlockOutput, Name: "y"},
			},
			Edges: []Edge{
				{From: PortRef{"s", "value"}, To: PortRef{"d", "x"}},
				{From: PortRef{"d", "y"}, To: PortRef{"o", "value"}},
			},
		}, "incompatible connection"},
		{"unconnected mandatory", &Workflow{Name: "w",
			Blocks: []Block{
				{ID: "d", Type: BlockService, Service: "svc://double"},
				{ID: "o", Type: BlockOutput, Name: "y"},
			},
			Edges: []Edge{{From: PortRef{"d", "y"}, To: PortRef{"o", "value"}}},
		}, "not connected"},
		{"cycle", &Workflow{Name: "w",
			Blocks: []Block{
				{ID: "a", Type: BlockService, Service: "svc://double"},
				{ID: "b", Type: BlockService, Service: "svc://double"},
			},
			Edges: []Edge{
				{From: PortRef{"a", "y"}, To: PortRef{"b", "x"}},
				{From: PortRef{"b", "y"}, To: PortRef{"a", "x"}},
			},
		}, "cycle"},
		{"self edge", &Workflow{Name: "w",
			Blocks: []Block{
				{ID: "a", Type: BlockService, Service: "svc://double",
					Params: core.Values{"x": 1.0}},
			},
			Edges: []Edge{{From: PortRef{"a", "y"}, To: PortRef{"a", "x"}}},
		}, "feeds itself"},
		{"bad script", &Workflow{Name: "w",
			Blocks: []Block{{ID: "s", Type: BlockScript, Script: "out.x = "}},
		}, "script"},
		{"unknown binding", &Workflow{Name: "w",
			Blocks: []Block{
				{ID: "d", Type: BlockService, Service: "svc://double",
					Params: core.Values{"x": 1.0, "bogus": 2.0}},
			},
		}, "unknown parameter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.wf.Check(inv)
			if err == nil {
				t.Fatal("Check passed, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseEncodeRoundTrip(t *testing.T) {
	wf := diamond()
	data, err := wf.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.Name != wf.Name || len(back.Blocks) != len(wf.Blocks) || len(back.Edges) != len(wf.Edges) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	inv := newFakeInvoker()
	eng := &Engine{Invoker: inv, Describer: inv}
	out, err := eng.Run(context.Background(), back, core.Values{"x": 3.0})
	if err != nil {
		t.Fatalf("Run parsed workflow: %v", err)
	}
	if out["result"] != 12.0 {
		t.Errorf("result = %v, want 12", out["result"])
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"w","bogus":1}`)); err == nil {
		t.Error("Parse accepted unknown field")
	}
}

func TestCompositeDescription(t *testing.T) {
	d := diamond().CompositeDescription()
	if d.Name != "diamond" {
		t.Errorf("name = %q", d.Name)
	}
	if len(d.Inputs) != 1 || d.Inputs[0].Name != "x" {
		t.Errorf("inputs = %+v, want [x]", d.Inputs)
	}
	if len(d.Outputs) != 1 || d.Outputs[0].Name != "result" {
		t.Errorf("outputs = %+v, want [result]", d.Outputs)
	}
}

func TestMissingWorkflowInputRejected(t *testing.T) {
	inv := newFakeInvoker()
	eng := &Engine{Invoker: inv, Describer: inv}
	_, err := eng.Run(context.Background(), diamond(), core.Values{})
	if err == nil || !strings.Contains(err.Error(), "missing input") {
		t.Errorf("err = %v, want missing input", err)
	}
}

func TestUnknownWorkflowInputRejected(t *testing.T) {
	inv := newFakeInvoker()
	eng := &Engine{Invoker: inv, Describer: inv}
	_, err := eng.Run(context.Background(), diamond(), core.Values{"x": 1.0, "zz": 2.0})
	if err == nil || !strings.Contains(err.Error(), "unknown input") {
		t.Errorf("err = %v, want unknown input", err)
	}
}

func TestOptionalInputDefault(t *testing.T) {
	inv := newFakeInvoker()
	wf := &Workflow{
		Name: "opt",
		Blocks: []Block{
			{ID: "x", Type: BlockInput, Name: "x", Schema: numSchema(),
				Optional: true, Default: 7.0},
			{ID: "d", Type: BlockService, Service: "svc://double"},
			{ID: "o", Type: BlockOutput, Name: "y"},
		},
		Edges: []Edge{
			{From: PortRef{"x", "value"}, To: PortRef{"d", "x"}},
			{From: PortRef{"d", "y"}, To: PortRef{"o", "value"}},
		},
	}
	eng := &Engine{Invoker: inv, Describer: inv}
	out, err := eng.Run(context.Background(), wf, core.Values{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out["y"] != 14.0 {
		t.Errorf("y = %v, want 14", out["y"])
	}
}
