package workflow_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
	"mathcloud/internal/platform"
	"mathcloud/internal/workflow"
)

// startWMS brings up a platform deployment with a WMS and two base
// services deployed in the same container.
func startWMS(t *testing.T) *platform.Deployment {
	t.Helper()
	d, err := platform.StartLocal(platform.Options{Workers: 8, WithWMS: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	adapter.RegisterFunc("wmstest.double", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	num := jsonschema.New(jsonschema.TypeNumber)
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "double",
			Inputs:  []core.Param{{Name: "x", Schema: num}},
			Outputs: []core.Param{{Name: "y", Schema: num}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function": "wmstest.double"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	return d
}

func chainWorkflow(d *platform.Deployment) *workflow.Workflow {
	uri := d.Container.ServiceURI("double")
	num := jsonschema.New(jsonschema.TypeNumber)
	return &workflow.Workflow{
		Name: "quadruple",
		Blocks: []workflow.Block{
			{ID: "x", Type: workflow.BlockInput, Name: "x", Schema: num},
			{ID: "d1", Type: workflow.BlockService, Service: uri},
			{ID: "d2", Type: workflow.BlockService, Service: uri},
			{ID: "out", Type: workflow.BlockOutput, Name: "y", Schema: num},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "x", Port: "value"}, To: workflow.PortRef{Block: "d1", Port: "x"}},
			{From: workflow.PortRef{Block: "d1", Port: "y"}, To: workflow.PortRef{Block: "d2", Port: "x"}},
			{From: workflow.PortRef{Block: "d2", Port: "y"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
}

func TestWMSPublishesCompositeService(t *testing.T) {
	d := startWMS(t)
	wf := chainWorkflow(d)
	if err := d.WMS.Save(wf); err != nil {
		t.Fatal(err)
	}
	// The composite service answers the unified API like any service.
	svc := client.New().Service(d.WMS.ServiceURI("quadruple"))
	desc, err := svc.Describe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Inputs) != 1 || desc.Inputs[0].Name != "x" {
		t.Errorf("composite inputs = %+v", desc.Inputs)
	}
	out, err := svc.Call(context.Background(), core.Values{"x": 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != 20.0 {
		t.Errorf("y = %v, want 20", out["y"])
	}
}

func TestWMSRESTLifecycle(t *testing.T) {
	d := startWMS(t)
	wf := chainWorkflow(d)
	doc, err := wf.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// POST /workflows saves and publishes.
	resp, err := http.Post(d.BaseURL+"/workflows", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("save status = %d", resp.StatusCode)
	}

	// GET /workflows lists it.
	resp, err = http.Get(d.BaseURL + "/workflows")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Workflows []struct {
			Name    string `json:"name"`
			Service string `json:"service"`
		} `json:"workflows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Workflows) != 1 || list.Workflows[0].Name != "quadruple" {
		t.Fatalf("list = %+v", list)
	}

	// GET /workflows/{name} returns the JSON document (the editor's
	// download path).
	resp, err = http.Get(d.BaseURL + "/workflows/quadruple")
	if err != nil {
		t.Fatal(err)
	}
	var back workflow.Workflow
	if err := json.NewDecoder(resp.Body).Decode(&back); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(back.Blocks) != len(wf.Blocks) {
		t.Errorf("document round trip lost blocks: %d vs %d", len(back.Blocks), len(wf.Blocks))
	}

	// Update: re-POST with a tweak redeploys.
	back.Title = "updated"
	doc2, _ := back.Encode()
	resp, err = http.Post(d.BaseURL+"/workflows", "application/json", bytes.NewReader(doc2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("update status = %d", resp.StatusCode)
	}

	// Execute through the composite service over plain HTTP.
	body := bytes.NewReader([]byte(`{"x": 3}`))
	resp, err = http.Post(d.BaseURL+"/services/quadruple?wait=10s", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != core.StateDone || job.Outputs["y"] != 12.0 {
		t.Errorf("job = %+v", job)
	}
	if len(job.Blocks) != 4 {
		t.Errorf("job carries %d block states, want 4", len(job.Blocks))
	}

	// DELETE removes workflow and composite service.
	req, _ := http.NewRequest(http.MethodDelete, d.BaseURL+"/workflows/quadruple", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, err := client.New().Service(d.BaseURL + "/services/quadruple").Describe(context.Background()); !client.IsNotFound(err) {
		t.Errorf("composite service survives delete: %v", err)
	}
}

func TestWMSRejectsInvalidWorkflow(t *testing.T) {
	d := startWMS(t)
	bad := &workflow.Workflow{
		Name: "bad",
		Blocks: []workflow.Block{
			{ID: "s", Type: workflow.BlockService, Service: d.Container.ServiceURI("double")},
		},
		// Mandatory input x unconnected.
	}
	doc, _ := bad.Encode()
	resp, err := http.Post(d.BaseURL+"/workflows", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid workflow save status = %d, want 400", resp.StatusCode)
	}
}

func TestWMSSubWorkflowComposition(t *testing.T) {
	// Publish a workflow, then use its composite service inside another
	// workflow — "dividing complex workflow into several simpler
	// sub-workflows by publishing and composing workflows as services".
	d := startWMS(t)
	if err := d.WMS.Save(chainWorkflow(d)); err != nil {
		t.Fatal(err)
	}
	num := jsonschema.New(jsonschema.TypeNumber)
	outer := &workflow.Workflow{
		Name: "sixteenfold",
		Blocks: []workflow.Block{
			{ID: "x", Type: workflow.BlockInput, Name: "x", Schema: num},
			{ID: "q1", Type: workflow.BlockService, Service: d.WMS.ServiceURI("quadruple")},
			{ID: "q2", Type: workflow.BlockService, Service: d.WMS.ServiceURI("quadruple")},
			{ID: "out", Type: workflow.BlockOutput, Name: "y", Schema: num},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "x", Port: "value"}, To: workflow.PortRef{Block: "q1", Port: "x"}},
			{From: workflow.PortRef{Block: "q1", Port: "y"}, To: workflow.PortRef{Block: "q2", Port: "x"}},
			{From: workflow.PortRef{Block: "q2", Port: "y"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	if err := d.WMS.Save(outer); err != nil {
		t.Fatal(err)
	}
	out, err := client.New().Service(d.WMS.ServiceURI("sixteenfold")).Call(
		context.Background(), core.Values{"x": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != 32.0 {
		t.Errorf("y = %v, want 32", out["y"])
	}
}

func TestCompositeJobCancellation(t *testing.T) {
	d := startWMS(t)
	adapter.RegisterFunc("wmstest.slow", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return core.Values{"y": 1.0}, nil
		}
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "slow",
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function": "wmstest.slow"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	wf := &workflow.Workflow{
		Name: "slowflow",
		Blocks: []workflow.Block{
			{ID: "s", Type: workflow.BlockService, Service: d.Container.ServiceURI("slow")},
			{ID: "out", Type: workflow.BlockOutput, Name: "y"},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "s", Port: "y"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	if err := d.WMS.Save(wf); err != nil {
		t.Fatal(err)
	}
	svc := client.New().Service(d.WMS.ServiceURI("slowflow"))
	job, err := svc.Submit(context.Background(), core.Values{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the workflow job to start running, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := svc.Job(context.Background(), job.URI)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == core.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workflow job stuck in %s", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := svc.Cancel(context.Background(), job.URI); err != nil {
		t.Fatal(err)
	}
	final, err := svc.Wait(context.Background(), job.URI)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != core.StateCancelled {
		t.Errorf("state = %s, want CANCELLED", final.State)
	}
}
