package workflow_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/platform"
	"mathcloud/internal/workflow"
)

func deployLocalAdd(t *testing.T, d *platform.Deployment) string {
	t.Helper()
	adapter.RegisterFunc("local.add", func(_ context.Context, in core.Values) (core.Values, error) {
		a, _ := in["a"].(float64)
		b, _ := in["b"].(float64)
		return core.Values{"sum": a + b}, nil
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "add",
			Inputs:  []core.Param{{Name: "a"}, {Name: "b"}},
			Outputs: []core.Param{{Name: "sum"}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"local.add"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	return d.Container.ServiceURI("add")
}

// TestLocalInvokerFastPath checks that an in-process service URI is
// dispatched without HTTP and yields the same outputs and description as
// the REST path.
func TestLocalInvokerFastPath(t *testing.T) {
	d, err := platform.StartLocal(platform.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	uri := deployLocalAdd(t, d)

	inv := workflow.NewLocalInvoker(nil)
	out, err := inv.Call(context.Background(), uri, core.Values{"a": 2.0, "b": 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if out["sum"] != 7.0 {
		t.Errorf("sum = %v, want 7", out["sum"])
	}

	desc, err := inv.Describe(uri)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Name != "add" || len(desc.Inputs) != 2 {
		t.Errorf("local description = %+v", desc)
	}

	// The fast path must surface job failures as errors, like HTTP does.
	if _, err := inv.Call(context.Background(), uri, core.Values{"a": 1.0, "b": 2.0, "zz": true}); err == nil {
		t.Error("invalid input accepted by the local fast path")
	}
}

// TestLocalInvokerFallback routes non-local URIs to the fallback invoker.
func TestLocalInvokerFallback(t *testing.T) {
	called := ""
	inv := workflow.NewLocalInvoker(invokerFn(func(_ context.Context, uri string, _ core.Values) (core.Values, error) {
		called = uri
		return core.Values{"ok": true}, nil
	}))
	out, err := inv.Call(context.Background(), "http://elsewhere.invalid/services/remote", core.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if out["ok"] != true || !strings.Contains(called, "elsewhere") {
		t.Errorf("fallback not used: out=%v called=%q", out, called)
	}
}

// TestLocalInvokerCancellation verifies that cancelling the caller's
// context cancels the locally dispatched job rather than leaking it into a
// worker slot.
func TestLocalInvokerCancellation(t *testing.T) {
	d, err := platform.StartLocal(platform.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	started := make(chan struct{}, 1)
	adapter.RegisterFunc("local.hang", func(ctx context.Context, _ core.Values) (core.Values, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "hang"},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"local.hang"}`)},
	}); err != nil {
		t.Fatal(err)
	}

	inv := workflow.NewLocalInvoker(nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := inv.Call(ctx, d.Container.ServiceURI("hang"), core.Values{})
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("local call did not return after cancellation")
	}
	// The dispatched job must have been cancelled, freeing the worker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		jobs := d.Container.Jobs().List("hang")
		if len(jobs) > 0 && jobs[0].State.Terminal() {
			if jobs[0].State != core.StateCancelled {
				t.Errorf("job state = %s, want %s", jobs[0].State, core.StateCancelled)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dispatched job never reached a terminal state")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkflowEngineWithLocalInvoker runs a full DAG through the engine
// with the local fast path and checks it matches the HTTP result.
func TestWorkflowEngineWithLocalInvoker(t *testing.T) {
	d, err := platform.StartLocal(platform.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	uri := deployLocalAdd(t, d)

	wf := &workflow.Workflow{
		Name: "sumtwice",
		Blocks: []workflow.Block{
			{ID: "in", Type: workflow.BlockInput, Name: "x"},
			{ID: "first", Type: workflow.BlockService, Service: uri},
			{ID: "second", Type: workflow.BlockService, Service: uri},
			{ID: "out", Type: workflow.BlockOutput, Name: "total"},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "first", Port: "a"}},
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "first", Port: "b"}},
			{From: workflow.PortRef{Block: "first", Port: "sum"}, To: workflow.PortRef{Block: "second", Port: "a"}},
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "second", Port: "b"}},
			{From: workflow.PortRef{Block: "second", Port: "sum"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	local := workflow.NewLocalInvoker(nil)
	engine := &workflow.Engine{Invoker: local, Describer: local}
	out, err := engine.Run(context.Background(), wf, core.Values{"x": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if out["total"] != 9.0 {
		t.Errorf("total = %v, want 9", out["total"])
	}

	httpInv := &workflow.HTTPInvoker{}
	httpEngine := &workflow.Engine{Invoker: httpInv, Describer: httpInv}
	httpOut, err := httpEngine.Run(context.Background(), wf, core.Values{"x": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if httpOut["total"] != out["total"] {
		t.Errorf("local path (%v) and HTTP path (%v) disagree", out["total"], httpOut["total"])
	}
}

// invokerFn adapts a function to workflow.Invoker.
type invokerFn func(context.Context, string, core.Values) (core.Values, error)

func (f invokerFn) Call(ctx context.Context, uri string, in core.Values) (core.Values, error) {
	return f(ctx, uri, in)
}
