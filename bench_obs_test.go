// Observability-overhead benchmarks (DESIGN.md §5d): the instrumented hot
// paths — job status GET and file GET through the container handler — with
// metric recording enabled versus disabled (obs.SetEnabled).  The ablation
// quantifies what the metrics plane costs on the paths the control-plane
// benchmarks optimised; both modes are recorded in BENCH_4.json and must
// stay within a few percent of each other.
package mathcloud_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/obs"
)

// newObsBenchContainer starts a container with one finished job and one
// stored file, returning the handler plus the two hot-path URLs.
func newObsBenchContainer(b *testing.B) (http.Handler, string, string) {
	b.Helper()
	adapter.RegisterFunc("bench.obsnoop", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"y": 1.0}, nil
	})
	c, err := container.New(container.Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "noop",
			Inputs:  []core.Param{{Name: "x", Optional: true}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.obsnoop"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	job, err := c.Jobs().Submit("noop", core.Values{"x": 1.0}, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if j, err := c.Jobs().Wait(context.Background(), job.ID, 10*time.Second); err != nil || !j.State.Terminal() {
		b.Fatalf("job not terminal (err=%v)", err)
	}
	fileID, err := c.Files().Put(strings.NewReader(strings.Repeat("x", 4096)), "")
	if err != nil {
		b.Fatal(err)
	}
	return c.Handler(), "/services/noop/jobs/" + job.ID, "/files/" + fileID
}

// benchHandlerGet drives GET requests for path through the handler with the
// metrics plane toggled per sub-benchmark.
func benchHandlerGet(b *testing.B, path string, wantCode int) {
	h, jobURL, fileURL := newObsBenchContainer(b)
	url := jobURL
	if path == "file" {
		url = fileURL
	}
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"instrumented", true}, {"disabled", false}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.SetEnabled(mode.enabled)
			defer obs.SetEnabled(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
				if w.Code != wantCode {
					b.Fatalf("GET %s = %d", url, w.Code)
				}
			}
		})
	}
}

// BenchmarkObsOverheadJobGet measures the job status poll — the highest-rate
// request of the platform — with and without metric recording.
func BenchmarkObsOverheadJobGet(b *testing.B) {
	benchHandlerGet(b, "job", http.StatusOK)
}

// BenchmarkObsOverheadFileGet measures the 4 KiB file download path with and
// without metric recording.
func BenchmarkObsOverheadFileGet(b *testing.B) {
	benchHandlerGet(b, "file", http.StatusOK)
}
