// Durability-plane benchmarks (DESIGN.md §5i): what the write-ahead journal
// costs on the submit path at each sync mode, and how fast boot-time replay
// rebuilds a container from ~10k journaled jobs.  Numbers land in
// BENCH_9.json.
package mathcloud_test

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/journal"
)

// quietLog silences container lifecycle logs in benchmarks.
func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }

var registerJournalBenchFunc = sync.OnceFunc(func() {
	adapter.RegisterFunc("benchwal.echo", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"y": in["x"]}, nil
	})
})

func startJournalBench(b *testing.B, dir string, mode journal.SyncMode) *container.Container {
	b.Helper()
	registerJournalBenchFunc()
	opts := container.Options{Workers: 4, Logger: quietLog()}
	if dir != "" {
		opts.DataDir = filepath.Join(dir, "files")
		opts.JournalDir = filepath.Join(dir, "journal")
		opts.WALSync = mode
		opts.SnapshotInterval = -1 // measure the WAL alone, not checkpoints
	}
	c, err := container.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "walecho",
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"benchwal.echo"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkJournalSubmit measures end-to-end job cost (submit through the
// manager, run a trivial native function, observe completion) with the
// journal off, fsync-batched, and fsync-per-append.  "off" is the pre-
// durability baseline; the batch mode is what -data-dir defaults to.
func BenchmarkJournalSubmit(b *testing.B) {
	modes := []struct {
		name string
		dir  bool
		mode journal.SyncMode
	}{
		{"off", false, journal.SyncOff},
		{"batch", true, journal.SyncBatch},
		{"always", true, journal.SyncAlways},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			dir := ""
			if m.dir {
				dir = b.TempDir()
			}
			c := startJournalBench(b, dir, m.mode)
			defer c.Close()
			jm := c.Jobs()
			ctx := context.Background()
			b.ResetTimer()
			start := time.Now()
			const burst = 16
			for i := 0; i < b.N; i++ {
				errs := make(chan error, burst)
				for j := 0; j < burst; j++ {
					x := float64(i*burst + j)
					go func() {
						job, err := jm.SubmitCtx(ctx, "walecho", core.Values{"x": x}, "bench")
						if err == nil {
							_, err = jm.Wait(ctx, job.ID, 30*time.Second)
						}
						errs <- err
					}()
				}
				for j := 0; j < burst; j++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(b.N*burst)/elapsed.Seconds(), "jobs/s")
		})
	}
}

// BenchmarkJournalRecovery measures boot-time replay: a journal carrying
// ~10k finished jobs is rebuilt into a fresh container per iteration.
func BenchmarkJournalRecovery(b *testing.B) {
	const jobs = 10_000
	dir := b.TempDir()

	// Populate once: run the campaign to completion and close cleanly, so
	// every iteration replays the same ~10k-job journal.
	c := startJournalBench(b, dir, journal.SyncOff)
	jm := c.Jobs()
	ctx := context.Background()
	const wave = 256 // stay under the submit queue's backpressure bound
	for submitted := 0; submitted < jobs; submitted += wave {
		n := wave
		if jobs-submitted < n {
			n = jobs - submitted
		}
		errs := make(chan error, n)
		for j := 0; j < n; j++ {
			x := float64(submitted + j)
			go func() {
				job, err := jm.SubmitCtx(ctx, "walecho", core.Values{"x": x}, "bench")
				if err == nil {
					_, err = jm.Wait(ctx, job.ID, 60*time.Second)
				}
				errs <- err
			}()
		}
		for j := 0; j < n; j++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	}
	c.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c2 := startJournalBench(b, dir, journal.SyncOff)
		if err := c2.Recover(); err != nil {
			b.Fatal(err)
		}
		if got := len(c2.Jobs().List("walecho")); got != jobs {
			b.Fatalf("iteration %d restored %d jobs, want %d", i, got, jobs)
		}
		b.StopTimer()
		c2.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(jobs), "jobs/replay")
}
