module mathcloud

go 1.22
