// Event-plane benchmarks (DESIGN.md §5g): 1000 clients following one
// width-100 sweep to completion, long-polling versus the SSE stream.  The
// headline number is HTTP requests per watcher — push turns the poll storm
// into one streamed request each.  Numbers land in BENCH_7.json.
package mathcloud_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
)

const (
	watchSweepWidth = 100
	watchClients    = 1000
	// watchJobTime paces the sweep (one worker, so ~8 s end to end): long
	// enough for the poll arm to show its request cadence, with child
	// transitions arriving faster than the idle cap below so SSE streams
	// never close mid-sweep.
	watchJobTime = 80 * time.Millisecond
	// watchWaitCap is the server's MaxWaitWindow: the long-poll ceiling a
	// proxy-friendly deployment would configure, and the cadence the poll
	// arm degenerates to.
	watchWaitCap = 150 * time.Millisecond
)

var registerWatchFuncs = sync.OnceFunc(func() {
	adapter.RegisterFunc("benchevents.sleep", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-time.After(watchJobTime):
			return core.Values{"ok": true}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
})

// startWatchBench brings up the paced service behind a request-counting
// listener and returns a client handle plus the counter.
func startWatchBench(b *testing.B) (*client.Service, *atomic.Int64) {
	b.Helper()
	registerWatchFuncs()
	c, err := container.New(container.Options{
		Workers:       1,
		MaxWaitWindow: watchWaitCap,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "watched", Version: "1",
			Inputs:  []core.Param{{Name: "x", Optional: true}},
			Outputs: []core.Param{{Name: "ok", Optional: true}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function": "benchevents.sleep"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	var requests atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		c.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(counted)
	b.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)

	// A fleet of concurrent watchers needs connection reuse far beyond the
	// default two idle conns per host.
	tr := &http.Transport{
		MaxIdleConns:        watchClients * 2,
		MaxIdleConnsPerHost: watchClients * 2,
	}
	b.Cleanup(tr.CloseIdleConnections)
	cl := &client.Client{
		HTTP:       &http.Client{Transport: tr},
		WaitWindow: 30 * time.Second,
		MinPoll:    10 * time.Millisecond,
	}
	return cl.Service(c.ServiceURI("watched")), &requests
}

// watchSweep submits one width-100 sweep and has 1000 watchers follow it
// to completion with the given wait function, returning the HTTP requests
// spent and how many watchers observed the terminal state.
func watchSweep(b *testing.B, svc *client.Service, requests *atomic.Int64,
	wait func(ctx context.Context, sweepURI string) (*core.Sweep, error)) (int64, int64) {
	b.Helper()
	ctx := context.Background()
	points := make([]core.Values, watchSweepWidth)
	for j := range points {
		points[j] = core.Values{"x": float64(j)}
	}
	before := requests.Load()
	sweep, err := svc.SubmitSweep(ctx, &core.SweepSpec{Points: points}, 0)
	if err != nil {
		b.Fatal(err)
	}
	var terminal atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < watchClients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done, err := wait(ctx, sweep.URI)
			if err == nil && done.State.Terminal() && done.Counts.Done == watchSweepWidth {
				terminal.Add(1)
			}
		}()
	}
	wg.Wait()
	return requests.Load() - before, terminal.Load()
}

// BenchmarkSweepWatchPoll1k is the baseline: every watcher long-polls the
// aggregate status, re-arming each time the server's clamped wait window
// expires — a thundering herd of GETs scaling with watchers × duration.
func BenchmarkSweepWatchPoll1k(b *testing.B) {
	svc, requests := startWatchBench(b)
	b.ResetTimer()
	var reqs, seen int64
	for i := 0; i < b.N; i++ {
		r, s := watchSweep(b, svc, requests, svc.WaitSweep)
		reqs += r
		seen += s
	}
	b.StopTimer()
	if seen != int64(b.N)*watchClients {
		b.Fatalf("%d/%d watchers observed the terminal state", seen, int64(b.N)*watchClients)
	}
	b.ReportMetric(float64(reqs)/float64(int64(b.N)*watchClients), "req/watcher")
	b.ReportMetric(float64(reqs)/float64(b.N), "req/sweep")
}

// BenchmarkSweepWatchSSE1k is the push plane: each watcher holds one SSE
// stream and is told about progress, paying one HTTP request for the whole
// watch regardless of sweep duration.
func BenchmarkSweepWatchSSE1k(b *testing.B) {
	svc, requests := startWatchBench(b)
	b.ResetTimer()
	var reqs, seen int64
	for i := 0; i < b.N; i++ {
		r, s := watchSweep(b, svc, requests, svc.WaitSweepSSE)
		reqs += r
		seen += s
	}
	b.StopTimer()
	if seen != int64(b.N)*watchClients {
		b.Fatalf("%d/%d watchers observed the terminal state", seen, int64(b.N)*watchClients)
	}
	b.ReportMetric(float64(reqs)/float64(int64(b.N)*watchClients), "req/watcher")
	b.ReportMetric(float64(reqs)/float64(b.N), "req/sweep")
}
